"""The shared sweep executor and the functional-result memoisation layer.

The contract under test: every sweep site can hand ``(traces, configs)``
to the executor and get the same counts it would have produced with a
hand-rolled double loop -- regardless of worker count, pool availability
or cache state -- while timing-only configuration variations cost one
functional simulation per trace, not one per cell.
"""

import dataclasses

import pytest

from repro.core import sweep
from repro.core.sweep import sweep_functional, sweep_timing, sweep_workers
from repro.sim import memo
from repro.sim.fast import run_functional
from repro.sim.timing import TimingSimulator
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts from an empty cache and zeroed counters."""
    memo.clear_memo_cache()
    yield
    memo.clear_memo_cache()


def timing_variants(base_config):
    """Configurations differing from ``base_config`` only in timing."""
    return [
        base_config,
        base_config.with_level(1, cycle_cpu_cycles=5),
        base_config.with_level(1, cycle_cpu_cycles=9, write_hit_cycles=3),
    ]


def assert_counts_equal(a, b):
    assert a.cpu_reads == b.cpu_reads
    assert a.cpu_writes == b.cpu_writes
    for fa, fb in zip(a.level_stats, b.level_stats):
        assert fa == fb
    assert a.memory_reads == b.memory_reads
    assert a.memory_writes == b.memory_writes


class TestGrid:
    def test_shape_and_values_match_direct_runs(self, small_traces, base_config):
        configs = [
            base_config,
            base_config.with_level(1, size_bytes=16 * KB),
        ]
        grid = sweep_functional(small_traces, configs)
        assert len(grid) == len(configs)
        assert all(len(row) == len(small_traces) for row in grid)
        for config, row in zip(configs, grid):
            for trace, result in zip(small_traces, row):
                assert_counts_equal(result, run_functional(trace, config))

    def test_deterministic_across_calls(self, small_traces, base_config):
        configs = timing_variants(base_config)
        first = sweep_functional(small_traces, configs)
        memo.clear_memo_cache()
        second = sweep_functional(small_traces, configs)
        for row_a, row_b in zip(first, second):
            for a, b in zip(row_a, row_b):
                assert_counts_equal(a, b)

    def test_empty_arguments_rejected(self, small_traces, base_config):
        with pytest.raises(ValueError):
            sweep_functional([], [base_config])
        with pytest.raises(ValueError):
            sweep_functional(small_traces, [])
        with pytest.raises(ValueError):
            sweep_timing([], [base_config])
        with pytest.raises(ValueError):
            sweep_timing(small_traces, [])


class TestMemoisation:
    def test_timing_only_sweep_simulates_once_per_trace(
        self, small_traces, base_config
    ):
        configs = timing_variants(base_config)
        grid = sweep_functional(small_traces, configs)
        stats = memo.memo_stats()
        # One functional simulation per trace; every other cell is a hit.
        assert memo.cache_size() == len(small_traces)
        assert stats.hits >= len(small_traces) * (len(configs) - 1)
        # The issue's contract: identical objects-by-value across the
        # timing-only axis.
        for j in range(len(small_traces)):
            baseline = grid[0][j]
            for i in range(1, len(configs)):
                assert_counts_equal(grid[i][j], baseline)
                # The count payload is shared, not recomputed.
                assert grid[i][j].level_stats is baseline.level_stats

    def test_results_carry_the_callers_config(self, small_traces, base_config):
        configs = timing_variants(base_config)
        grid = sweep_functional(small_traces, configs)
        for config, row in zip(configs, grid):
            for result in row:
                assert result.config is config

    def test_cache_survives_across_sweeps(self, small_traces, base_config):
        sweep_functional(small_traces, [base_config])
        misses_before = memo.memo_stats().misses
        sweep_functional(small_traces, [base_config.with_level(1, cycle_cpu_cycles=7)])
        assert memo.memo_stats().misses == misses_before

    def test_functional_change_misses(self, small_traces, base_config):
        sweep_functional(small_traces, [base_config])
        size_before = memo.cache_size()
        sweep_functional(
            small_traces, [base_config.with_level(1, size_bytes=16 * KB)]
        )
        assert memo.cache_size() == size_before + len(small_traces)

    def test_eviction_respects_the_cap(self, small_traces, base_config, monkeypatch):
        monkeypatch.setattr(memo, "MAX_ENTRIES", 1)
        sweep_functional(
            small_traces[:1],
            [base_config, base_config.with_level(1, size_bytes=16 * KB)],
        )
        assert memo.cache_size() == 1
        assert memo.memo_stats().evictions >= 1


class TestProjection:
    def test_timing_fields_excluded(self, base_config):
        variants = timing_variants(base_config)
        projections = {memo.functional_projection(c) for c in variants}
        assert len(projections) == 1

    @pytest.mark.parametrize(
        "changes",
        [
            {"size_bytes": 16 * KB},
            {"block_bytes": 64},
            {"associativity": 2},
            {"write_policy": "write-through", "write_allocate": False},
            {"fetch_blocks": 2},
            {"prefetch": "on-miss"},
        ],
    )
    def test_functional_fields_included(self, base_config, changes):
        changed = base_config.with_level(1, **changes)
        assert memo.functional_projection(changed) != (
            memo.functional_projection(base_config)
        )

    def test_inclusion_included(self, base_config):
        inclusive = dataclasses.replace(base_config, enforce_inclusion=True)
        assert memo.functional_projection(inclusive) != (
            memo.functional_projection(base_config)
        )

    def test_fingerprint_is_cached_and_distinct(self):
        a = SyntheticWorkload(seed=5).trace(2_000)
        b = SyntheticWorkload(seed=6).trace(2_000)
        fp = memo.trace_fingerprint(a)
        assert a.metadata[memo._FINGERPRINT_SLOT] == fp
        assert memo.trace_fingerprint(a) == fp
        assert memo.trace_fingerprint(b) != fp

    def test_warmup_changes_fingerprint(self):
        a = SyntheticWorkload(seed=7).trace(2_000, warmup=0)
        b = SyntheticWorkload(seed=7).trace(2_000, warmup=500)
        assert memo.trace_fingerprint(a) != memo.trace_fingerprint(b)


class TestParallel:
    def test_pool_matches_serial(self, small_traces, base_config):
        configs = [
            base_config,
            base_config.with_level(1, size_bytes=16 * KB),
            base_config.with_level(1, size_bytes=32 * KB),
        ]
        serial = sweep_functional(small_traces, configs, workers=1)
        memo.clear_memo_cache()
        pooled = sweep_functional(small_traces, configs, workers=2)
        for row_a, row_b in zip(serial, pooled):
            for a, b in zip(row_a, row_b):
                assert_counts_equal(a, b)

    def test_env_knob_controls_workers(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV, "3")
        assert sweep_workers() == 3
        monkeypatch.setenv(sweep.WORKERS_ENV, "0")
        assert sweep_workers() == 1
        monkeypatch.setenv(sweep.WORKERS_ENV, "nope")
        with pytest.raises(ValueError, match=sweep.WORKERS_ENV):
            sweep_workers()

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV, "8")
        assert sweep_workers(2) == 2

    def test_graceful_fallback_when_pool_unavailable(
        self, small_traces, base_config, monkeypatch
    ):
        monkeypatch.setattr(sweep, "_pool_map", lambda *a, **k: None)
        configs = [
            base_config,
            base_config.with_level(1, size_bytes=16 * KB),
        ]
        grid = sweep_functional(small_traces, configs, workers=4)
        for config, row in zip(configs, grid):
            for trace, result in zip(small_traces, row):
                assert_counts_equal(result, run_functional(trace, config))


class TestTiming:
    def test_matches_direct_timing_runs(self, small_traces, base_config):
        configs = [
            base_config,
            base_config.with_level(1, cycle_cpu_cycles=6),
        ]
        grid = sweep_timing(small_traces, configs)
        assert len(grid) == len(configs)
        for config, row in zip(configs, grid):
            for trace, result in zip(small_traces, row):
                direct = TimingSimulator(config).run(trace)
                assert result.total_cycles == direct.total_cycles
                assert result.total_ns == direct.total_ns

    def test_no_memoisation_for_timing(self, small_traces, base_config):
        before = memo.memo_stats().lookups
        sweep_timing(small_traces, timing_variants(base_config))
        assert memo.memo_stats().lookups == before


class TestWorkerErrors:
    def test_worker_exceptions_propagate(
        self, small_traces, base_config, monkeypatch
    ):
        """Regression: a worker crash used to be swallowed by the pool
        fallback, silently re-running the grid serially.  The poisoned
        simulator below only raises in a forked child (the monkeypatched
        module global is inherited across fork), so the serial path would
        "succeed" -- masking the failure -- while the pooled path must
        surface it.
        """
        import os

        parent_pid = os.getpid()
        real = sweep.run_functional

        def poisoned(trace, config):
            if os.getpid() != parent_pid:
                raise ValueError("worker exploded")
            return real(trace, config)

        monkeypatch.setattr(sweep, "run_functional", poisoned)
        # Keep the cells on the per-cell functional path: with the grid
        # planner on they would ride stack passes and never touch the
        # poisoned run_functional.
        monkeypatch.setenv(sweep.STACKDIST_ENV, "0")
        configs = [
            base_config,
            base_config.with_level(1, size_bytes=16 * KB),
        ]
        # 2 traces x 2 functionally distinct configs = 4 pending cells,
        # enough to engage the pool.
        with pytest.raises(ValueError, match="worker exploded"):
            sweep_functional(small_traces, configs, workers=2)

    def test_pool_creation_failure_still_degrades_serially(
        self, small_traces, base_config, monkeypatch
    ):
        import multiprocessing

        class Unforkable:
            def Pool(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda *a, **k: Unforkable()
        )
        configs = [
            base_config,
            base_config.with_level(1, size_bytes=16 * KB),
        ]
        grid = sweep_functional(small_traces, configs, workers=2)
        for config, row in zip(configs, grid):
            for trace, result in zip(small_traces, row):
                assert_counts_equal(result, run_functional(trace, config))


class TestStackdistPlanner:
    """Grid batching: cells differing only in deepest-level associativity
    ride one stack-distance pass; everything else keeps per-cell
    semantics (and the knob can force the old behaviour)."""

    @staticmethod
    def grid_configs(base_config, l2_kb=64, ways=(1, 2, 4, 8)):
        """Same deepest-level set count at every associativity."""
        return [
            base_config.with_level(1, associativity=a, size_bytes=l2_kb * KB * a)
            for a in ways
        ]

    def test_one_pass_per_group_with_exact_counts(
        self, small_traces, base_config, monkeypatch
    ):
        from repro.audit import manifest
        from repro.sim import stackdist

        configs = self.grid_configs(base_config)
        monkeypatch.setenv(sweep.STACKDIST_ENV, "0")
        baseline = sweep_functional(small_traces, configs, workers=1)
        memo.clear_memo_cache()
        stackdist.clear_front_cache()
        monkeypatch.setenv(sweep.STACKDIST_ENV, "1")
        with manifest.recording("planner-on") as run:
            derived = sweep_functional(small_traces, configs, workers=1)
        for row_a, row_b in zip(baseline, derived):
            for a, b in zip(row_a, row_b):
                assert_counts_equal(a, b)
        note = run.sweeps[0]
        assert note.stackdist_groups == len(small_traces)
        assert note.cells_derived == len(configs) * len(small_traces)
        assert note.simulated == 0
        assert note.memoised == 0

    def test_results_carry_the_callers_config(self, small_traces, base_config):
        configs = self.grid_configs(base_config)
        grid = sweep_functional(small_traces, configs, workers=1)
        for config, row in zip(configs, grid):
            for result in row:
                assert result.config is config

    def test_env_knob_disables_grouping(
        self, small_traces, base_config, monkeypatch
    ):
        from repro.audit import manifest

        monkeypatch.setenv(sweep.STACKDIST_ENV, "0")
        assert not sweep.stackdist_enabled()
        configs = self.grid_configs(base_config)
        with manifest.recording("planner-off") as run:
            sweep_functional(small_traces, configs, workers=1)
        note = run.sweeps[0]
        assert note.stackdist_groups == 0
        assert note.cells_derived == 0
        assert note.simulated == len(configs) * len(small_traces)

    def test_mixed_eligibility_falls_back_per_cell(
        self, small_traces, base_config, monkeypatch
    ):
        from repro.audit import manifest

        configs = self.grid_configs(base_config) + [
            # FIFO at 2 ways: fast-ineligible, simulated per cell.
            base_config.with_level(
                1, associativity=2, size_bytes=128 * KB, replacement="fifo"
            ),
            # Eligible but alone at its set count: it still rides a solo
            # stack pass because its upstream L1 replay is shared with
            # the group above.
            base_config.with_level(1, size_bytes=32 * KB),
        ]
        with manifest.recording("planner-mixed") as run:
            grid = sweep_functional(small_traces, configs, workers=1)
        note = run.sweeps[0]
        assert note.stackdist_groups == 2 * len(small_traces)
        assert note.cells_derived == 5 * len(small_traces)
        assert note.simulated == len(small_traces)
        for config, row in zip(configs, grid):
            for trace, result in zip(small_traces, row):
                assert_counts_equal(result, run_functional(trace, config))

    def test_derived_extras_memo_hit_later_runs(
        self, small_traces, base_config
    ):
        from repro.audit import manifest

        # The pass derives every STACK_ASSOCIATIVITY; a later sweep over
        # a member nobody asked for the first time must hit the memo.
        sweep_functional(
            small_traces, self.grid_configs(base_config), workers=1
        )
        sixteen = base_config.with_level(
            1, associativity=16, size_bytes=64 * KB * 16
        )
        with manifest.recording("planner-extra") as run:
            sweep_functional(small_traces, [sixteen], workers=1)
        note = run.sweeps[0]
        assert note.simulated == 0
        assert note.stackdist_groups == 0
        assert note.memoised == len(small_traces)

    def test_pool_matches_serial_for_groups(
        self, small_traces, base_config, monkeypatch
    ):
        from repro.sim import stackdist

        # Two set counts x two traces = four groups, enough to engage
        # the pool for the stackdist batch itself.
        configs = self.grid_configs(base_config, l2_kb=64) + (
            self.grid_configs(base_config, l2_kb=32)
        )
        serial = sweep_functional(small_traces, configs, workers=1)
        memo.clear_memo_cache()
        stackdist.clear_front_cache()
        pooled = sweep_functional(small_traces, configs, workers=2)
        for row_a, row_b in zip(serial, pooled):
            for a, b in zip(row_a, row_b):
                assert_counts_equal(a, b)

    def test_corrupted_grid_result_caught_at_intake(
        self, small_traces, base_config, monkeypatch
    ):
        from repro.audit import AuditError

        # A histogram gone wrong inside the stack pass must not poison
        # the grid: the injected corruption breaks a conservation law on
        # one derived member, and the sweep-intake re-audit rejects the
        # whole group.
        monkeypatch.setenv("REPRO_AUDIT", "1")
        monkeypatch.setenv("REPRO_FAULTS", "corrupt_result:1")
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "0")
        configs = self.grid_configs(base_config)
        with pytest.raises(AuditError):
            sweep_functional(small_traces, configs, workers=1)


class TestGridDedup:
    def test_inert_replacement_policies_share_one_simulation(
        self, small_traces, base_config, monkeypatch
    ):
        from repro.audit import manifest

        # Direct-mapped levels make the stated replacement policy dead
        # configuration: these two configs are functionally identical
        # and must cost one simulation, returning a shared payload.
        monkeypatch.setenv(sweep.STACKDIST_ENV, "0")
        lru = base_config
        fifo = base_config.with_level(1, replacement="fifo")
        assert memo.functional_projection(lru) == memo.functional_projection(fifo)
        with manifest.recording("dedup") as run:
            grid = sweep_functional(small_traces, [lru, fifo], workers=1)
        note = run.sweeps[0]
        assert note.simulated == len(small_traces)
        assert note.memoised == len(small_traces)
        for j in range(len(small_traces)):
            assert grid[0][j].level_stats is grid[1][j].level_stats
            assert_counts_equal(grid[0][j], grid[1][j])

    def test_dead_prefetch_distance_shares_one_simulation(
        self, small_traces, base_config, monkeypatch
    ):
        monkeypatch.setenv(sweep.STACKDIST_ENV, "0")
        variant = base_config.with_level(1, prefetch_distance=7)
        assert memo.functional_projection(base_config) == (
            memo.functional_projection(variant)
        )
        grid = sweep_functional(small_traces, [base_config, variant], workers=1)
        for j in range(len(small_traces)):
            assert grid[0][j].level_stats is grid[1][j].level_stats
