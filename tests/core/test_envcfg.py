"""Tests for the central REPRO_* environment registry.

The behavioural contracts of the individual knobs (worker counts,
retries, fault specs) are pinned by their consumers' suites --
``tests/resilience/test_workers_env.py`` et al.  This file tests the
registry itself: parsing, defaults, the blank-value semantics, the
cross-module default mirrors, and the generated docs tables.
"""

import pytest

from repro.core import envcfg


# -- parsing and defaults ----------------------------------------------------


def test_unset_returns_default(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_RETRIES", raising=False)
    assert envcfg.get("REPRO_SWEEP_RETRIES") == 2


def test_set_value_is_parsed(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", " 5 ")
    assert envcfg.get("REPRO_SWEEP_RETRIES") == 5


def test_blank_means_unset_for_most_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "   ")
    assert envcfg.get("REPRO_SWEEP_RETRIES") == 2


def test_int_parse_error_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "soon")
    with pytest.raises(ValueError, match="REPRO_SWEEP_RETRIES must be an integer"):
        envcfg.get("REPRO_SWEEP_RETRIES")


def test_int_minimum_enforced(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "-1")
    with pytest.raises(ValueError, match="must be >= 0"):
        envcfg.get("REPRO_SWEEP_RETRIES")


def test_float_positive_enforced(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "0")
    with pytest.raises(ValueError, match="REPRO_SWEEP_TIMEOUT must be positive"):
        envcfg.get("REPRO_SWEEP_TIMEOUT")


def test_float_parse_error(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "fast")
    with pytest.raises(ValueError, match="must be a number"):
        envcfg.get("REPRO_SWEEP_TIMEOUT")


def test_raw_returns_uninterpreted_string(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", " 7 ")
    assert envcfg.raw("REPRO_SWEEP_WORKERS") == " 7 "
    monkeypatch.delenv("REPRO_SWEEP_WORKERS")
    assert envcfg.raw("REPRO_SWEEP_WORKERS") is None


# -- REPRO_AUDIT tri-state ---------------------------------------------------


def test_audit_unset_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT", raising=False)
    assert envcfg.get("REPRO_AUDIT") is None


def test_audit_blank_is_explicit_off(monkeypatch):
    """Unlike other knobs, a set-but-blank REPRO_AUDIT means *off*, not
    unset -- the audit layer's pytest auto-detection must not kick in."""
    monkeypatch.setenv("REPRO_AUDIT", "")
    assert envcfg.get("REPRO_AUDIT") is False


@pytest.mark.parametrize("value", ["0", "false", "off", "no", "No", " OFF "])
def test_audit_falsy_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_AUDIT", value)
    assert envcfg.get("REPRO_AUDIT") is False


@pytest.mark.parametrize("value", ["1", "true", "yes", "anything"])
def test_audit_truthy_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_AUDIT", value)
    assert envcfg.get("REPRO_AUDIT") is True


# -- registry discipline -----------------------------------------------------


def test_unregistered_name_fails_loudly():
    with pytest.raises(ValueError, match="not a registered environment variable"):
        envcfg.get("REPRO_NO_SUCH_KNOB")


def test_register_rejects_non_repro_namespace():
    with pytest.raises(ValueError, match="REPRO_"):
        envcfg.register(
            "OTHER_KNOB", kind="int", default=0, doc="x",
            parse=envcfg.parse_int(), section="sweep",
        )


def test_register_rejects_duplicates():
    with pytest.raises(ValueError, match="registered twice"):
        envcfg.register(
            "REPRO_AUDIT", kind="flag", default=None, doc="x",
            parse=envcfg.parse_bool, section="audit",
        )


def test_every_registration_is_documented():
    for variable in envcfg.all_vars():
        assert variable.doc and variable.kind and variable.section


def test_registered_names_cover_the_known_knobs():
    names = envcfg.registered_names()
    for expected in (
        "REPRO_AUDIT", "REPRO_RECORDS", "REPRO_TRACES", "REPRO_TRACE_CACHE",
        "REPRO_FULL", "REPRO_SWEEP_WORKERS", "REPRO_SWEEP_RETRIES",
        "REPRO_SWEEP_TIMEOUT", "REPRO_FAULTS", "REPRO_FAULTS_SEED",
        "REPRO_FAULTS_HANG_S", "REPRO_TRACE_CHUNK", "REPRO_SWEEP_CONTEXT",
    ):
        assert expected in names


# -- cross-module default mirrors --------------------------------------------


def test_fault_defaults_match_the_mirrored_constants():
    """faults.py mirrors the registry defaults in module constants
    (envcfg cannot import faults without a cycle); they must not drift."""
    from repro.resilience import faults

    assert envcfg.var("REPRO_FAULTS_SEED").default == faults._DEFAULT_SEED
    assert envcfg.var("REPRO_FAULTS_HANG_S").default == faults._DEFAULT_HANG_S


def test_workload_defaults_come_from_the_registry():
    from repro.experiments import workloads

    assert workloads.DEFAULT_RECORDS == envcfg.var("REPRO_RECORDS").default
    assert workloads.DEFAULT_TRACES == envcfg.var("REPRO_TRACES").default


# -- generated docs ----------------------------------------------------------


def test_markdown_table_has_a_row_per_variable():
    table = envcfg.markdown_table()
    for name in envcfg.registered_names():
        assert f"`{name}`" in table


def test_markdown_table_section_filter():
    table = envcfg.markdown_table("resilience")
    assert "`REPRO_FAULTS`" in table
    assert "`REPRO_RECORDS`" not in table


def test_rewrite_doc_tables_round_trip():
    text = (
        "# doc\n"
        "<!-- envcfg:begin sweep -->\n"
        "stale contents\n"
        "<!-- envcfg:end sweep -->\n"
        "tail\n"
    )
    regenerated = envcfg.rewrite_doc_tables(text)
    assert "stale contents" not in regenerated
    assert "`REPRO_SWEEP_WORKERS`" in regenerated
    # a second pass is a fixed point
    assert envcfg.rewrite_doc_tables(regenerated) == regenerated


def test_rewrite_doc_tables_unknown_section():
    text = "<!-- envcfg:begin nosuch -->\n<!-- envcfg:end nosuch -->\n"
    with pytest.raises(ValueError, match="unknown envcfg section"):
        envcfg.rewrite_doc_tables(text)


def test_rewrite_doc_tables_unterminated_block():
    text = "<!-- envcfg:begin sweep -->\nno end marker\n"
    with pytest.raises(ValueError, match="unterminated"):
        envcfg.rewrite_doc_tables(text)


def test_committed_docs_tables_are_fresh():
    """The tables in docs/ match the registry (same check CI runs)."""
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    for relative in ("docs/resilience.md", "docs/observability.md"):
        text = (repo / relative).read_text()
        assert envcfg.rewrite_doc_tables(text) == text, f"{relative} is stale"
