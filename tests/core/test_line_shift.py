"""Tests for the iso-performance line-shift measurement."""

import numpy as np
import pytest

from repro.core.constant_performance import (
    iso_line_shift,
    lines_of_constant_performance,
)
from repro.core.design_space import AffineTimeModel, SpeedSizeGrid


def grid_from(bases, events, sizes, cycles=(1.0, 3.0, 5.0)):
    models = [
        AffineTimeModel(base=b, events_per_cycle=e, cpu_reads=1, cpu_writes=0)
        for b, e in zip(bases, events)
    ]
    values = np.array([[m.total_cycles(c) for c in cycles] for m in models])
    return SpeedSizeGrid(
        sizes=list(sizes), cycle_times=list(cycles),
        total_cycles=values, models=models,
    )


SIZES = [4096 * 2**i for i in range(5)]
BASES = [3000.0, 2400.0, 2100.0, 1980.0, 1940.0]


class TestIsoLineShift:
    def test_identical_families_have_unit_shift(self):
        a = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[1.5, 2.0]
        )
        b = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[1.5, 2.0]
        )
        assert iso_line_shift(a, b) == pytest.approx(1.0)

    def test_one_size_right_shift_measured(self):
        # Pin a common normalisation so family b is an exact one-size
        # translate of family a (size i behaves like a's size i-1); the
        # families' own best machines differ, which is the normalisation
        # freedom the paper's measurement also carries.
        reference = 2040.0
        a = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[2.0],
            reference_cycles=reference,
        )
        shifted_bases = [3600.0] + BASES[:-1]
        b = lines_of_constant_performance(
            grid_from(shifted_bases, [100.0] * 5, SIZES), levels=[2.0],
            reference_cycles=reference,
        )
        shift = iso_line_shift(a, b)
        assert shift == pytest.approx(2.0, rel=0.05)

    def test_left_shift_below_one(self):
        reference = 2040.0
        a = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[2.0],
            reference_cycles=reference,
        )
        shifted_bases = BASES[1:] + [1930.0]
        b = lines_of_constant_performance(
            grid_from(shifted_bases, [100.0] * 5, SIZES), levels=[2.0],
            reference_cycles=reference,
        )
        shift = iso_line_shift(a, b)
        assert shift < 1.0

    def test_none_when_no_cycle_overlap(self):
        a = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[2.0]
        )
        # A family whose cycle times at level 2.0 sit far above a's range.
        b = lines_of_constant_performance(
            grid_from([b - 1900 for b in BASES], [1.0] * 5, SIZES),
            levels=[2.0],
        )
        assert iso_line_shift(a, b) is None or iso_line_shift(a, b) > 0

    def test_disjoint_levels_give_none(self):
        a = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[1.4]
        )
        b = lines_of_constant_performance(
            grid_from(BASES, [100.0] * 5, SIZES), levels=[2.2]
        )
        assert iso_line_shift(a, b) is None
