"""Tests for the speed-size sweep engine, including the affine-vs-timing
validation that underwrites every Figure 4 and 5 reproduction."""

import numpy as np
import pytest

from repro.core.design_space import (
    AffineTimeModel,
    affine_model_for,
    execution_time_grid,
)
from repro.sim.functional import FunctionalSimulator
from repro.sim.timing import TimingSimulator
from repro.units import KB


class TestAffineTimeModel:
    def test_linearity(self):
        model = AffineTimeModel(base=1000.0, events_per_cycle=50.0, cpu_reads=1, cpu_writes=0)
        assert model.total_cycles(3.0) == pytest.approx(1150.0)
        assert model.total_cycles(5.0) - model.total_cycles(4.0) == pytest.approx(50.0)

    def test_inversion(self):
        model = AffineTimeModel(base=1000.0, events_per_cycle=50.0, cpu_reads=1, cpu_writes=0)
        assert model.cycle_for_total(model.total_cycles(3.7)) == pytest.approx(3.7)

    def test_invalid_cycle_rejected(self):
        model = AffineTimeModel(base=1.0, events_per_cycle=1.0, cpu_reads=0, cpu_writes=0)
        with pytest.raises(ValueError):
            model.total_cycles(0.0)

    def test_flat_model_cannot_invert(self):
        model = AffineTimeModel(base=1.0, events_per_cycle=0.0, cpu_reads=0, cpu_writes=0)
        with pytest.raises(ValueError):
            model.cycle_for_total(1.0)


class TestAffineAgainstTiming:
    """The affine counts method must track the timing simulator."""

    @pytest.mark.parametrize("l2_kb,cycle", [(16, 3.0), (64, 3.0), (64, 6.0)])
    def test_absolute_agreement(self, small_traces, base_config, l2_kb, cycle):
        config = base_config.with_level(1, size_bytes=l2_kb * KB, cycle_cpu_cycles=cycle)
        trace = small_traces[0]
        functional = FunctionalSimulator(config).run(trace)
        model = affine_model_for(functional, config)
        predicted = model.total_cycles(cycle)
        measured = TimingSimulator(config).run(trace).total_cycles
        assert predicted == pytest.approx(measured, rel=0.15)

    def test_relative_agreement_across_cycle_times(self, small_traces, base_config):
        """Ratios along the cycle-time axis are what Figure 4 plots; they
        must agree more tightly than the absolute values."""
        trace = small_traces[0]
        ratios = {}
        for method in ("affine", "timing"):
            times = []
            for cycle in (3.0, 6.0):
                config = base_config.with_level(1, cycle_cpu_cycles=cycle)
                if method == "affine":
                    functional = FunctionalSimulator(config).run(trace)
                    times.append(affine_model_for(functional, config).total_cycles(cycle))
                else:
                    times.append(TimingSimulator(config).run(trace).total_cycles)
            ratios[method] = times[1] / times[0]
        # The affine model omits write-buffer congestion, which grows with
        # the cycle time; the validated envelope is ~15% on the sensitivity
        # (see the affine-vs-timing ablation benchmark).
        assert ratios["affine"] == pytest.approx(ratios["timing"], rel=0.15)

    def test_counts_do_not_depend_on_cycle_time(self, small_traces, base_config):
        trace = small_traces[0]
        fast = FunctionalSimulator(base_config.with_level(1, cycle_cpu_cycles=1.0)).run(trace)
        slow = FunctionalSimulator(base_config.with_level(1, cycle_cpu_cycles=9.0)).run(trace)
        assert fast.level_stats[1].read_misses == slow.level_stats[1].read_misses


class TestExecutionTimeGrid:
    def test_grid_shape_and_models(self, small_traces, base_config):
        sizes = [16 * KB, 64 * KB]
        cycles = [1.0, 3.0, 5.0]
        grid = execution_time_grid(small_traces, base_config, sizes, cycles)
        assert grid.total_cycles.shape == (2, 3)
        assert len(grid.models) == 2

    def test_time_increases_with_cycle_time(self, small_traces, base_config):
        grid = execution_time_grid(
            small_traces, base_config, [32 * KB], [1.0, 3.0, 5.0, 10.0]
        )
        row = grid.total_cycles[0]
        assert np.all(np.diff(row) > 0)

    def test_time_decreases_with_size_at_fixed_cycle(self, small_traces, base_config):
        grid = execution_time_grid(
            small_traces, base_config, [8 * KB, 32 * KB, 128 * KB], [3.0]
        )
        column = grid.column(3.0)
        assert column[0] > column[-1]

    def test_relative_normalises_to_best(self, small_traces, base_config):
        grid = execution_time_grid(
            small_traces, base_config, [16 * KB, 64 * KB], [1.0, 5.0]
        )
        assert grid.relative.min() == pytest.approx(1.0)

    def test_relative_to_point(self, small_traces, base_config):
        grid = execution_time_grid(
            small_traces, base_config, [16 * KB, 64 * KB], [1.0, 5.0]
        )
        rel = grid.relative_to_point(64 * KB, 1.0)
        assert rel[1, 0] == pytest.approx(1.0)

    def test_validation(self, small_traces, base_config):
        with pytest.raises(ValueError):
            execution_time_grid([], base_config, [16 * KB], [3.0])
        with pytest.raises(ValueError):
            execution_time_grid(small_traces, base_config, [], [3.0])
        with pytest.raises(ValueError):
            execution_time_grid(small_traces, base_config, [16 * KB], [0.0])

    def test_affine_method_requires_two_levels(self, small_traces, base_config):
        single = base_config.without_level(0)
        functional = FunctionalSimulator(single).run(small_traces[0])
        with pytest.raises(ValueError, match="two-level"):
            affine_model_for(functional, single)
