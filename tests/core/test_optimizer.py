"""Tests for the hierarchy optimiser."""

import pytest

from repro.core.optimizer import (
    HierarchyOptimizer,
    TechnologyModel,
    single_level_ceiling,
)
from repro.units import KB


def technology(ns_per_doubling=2.0, ns_per_way=11.0):
    return TechnologyModel(
        base_size=16 * KB,
        base_ns=25.0,
        ns_per_doubling=ns_per_doubling,
        ns_per_way_doubling=ns_per_way,
    )


class TestTechnologyModel:
    def test_cycle_grows_with_size_and_ways(self):
        tech = technology()
        assert tech.cycle_ns(16 * KB) == pytest.approx(25.0)
        assert tech.cycle_ns(64 * KB) == pytest.approx(29.0)
        assert tech.cycle_ns(16 * KB, associativity=2) == pytest.approx(36.0)

    def test_smaller_than_base_is_faster(self):
        tech = technology()
        assert tech.cycle_ns(8 * KB) == pytest.approx(23.0)

    def test_invalid_queries_rejected(self):
        with pytest.raises(ValueError):
            technology().cycle_ns(0)
        with pytest.raises(ValueError):
            technology().cycle_ns(16 * KB, associativity=0)


class TestOptimizer:
    SIZES = [8 * KB, 32 * KB, 128 * KB]

    def test_best_is_minimum_of_evaluations(self, small_traces, base_config):
        optimizer = HierarchyOptimizer(base_config, technology(), small_traces)
        result = optimizer.optimize(self.SIZES, set_sizes=(1, 2))
        assert result.best.total_cycles == min(
            e.total_cycles for e in result.evaluations
        )
        assert result.sorted_by_time()[0] is result.best

    def test_free_growth_picks_largest(self, small_traces, base_config):
        tech = technology(ns_per_doubling=0.0, ns_per_way=0.0)
        optimizer = HierarchyOptimizer(base_config, tech, small_traces)
        result = optimizer.optimize(self.SIZES, set_sizes=(1,))
        assert result.best.l2_size == self.SIZES[-1]

    def test_punitive_growth_picks_smallest(self, small_traces, base_config):
        tech = technology(ns_per_doubling=200.0)
        optimizer = HierarchyOptimizer(base_config, tech, small_traces)
        result = optimizer.optimize(self.SIZES, set_sizes=(1,))
        assert result.best.l2_size == self.SIZES[0]

    def test_cycle_times_rounded_to_whole_cpu_cycles(self, small_traces, base_config):
        optimizer = HierarchyOptimizer(base_config, technology(), small_traces)
        evaluation = optimizer.evaluate(32 * KB, 1)
        assert evaluation.l2_cycle_cpu_cycles == float(
            int(evaluation.l2_cycle_cpu_cycles)
        )

    def test_degenerate_geometries_skipped(self, small_traces, base_config):
        optimizer = HierarchyOptimizer(base_config, technology(), small_traces)
        # 8-way with 32-byte blocks needs >= 256 bytes; 128B candidates drop.
        result = optimizer.optimize([128, 8 * KB], set_sizes=(8,))
        assert all(e.l2_size == 8 * KB for e in result.evaluations)

    def test_validation(self, small_traces, base_config):
        with pytest.raises(ValueError):
            HierarchyOptimizer(base_config, technology(), [])
        optimizer = HierarchyOptimizer(base_config, technology(), small_traces)
        with pytest.raises(ValueError):
            optimizer.optimize([], set_sizes=(1,))


class TestPaperClaims:
    def test_better_l1_grows_optimal_l2(self, small_traces, base_config):
        """Section 4/6: improving the upstream cache moves the optimal
        downstream cache toward larger (and slower)."""
        tech = technology(ns_per_doubling=6.0, ns_per_way=11.0)
        sizes = [8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB]
        small_l1 = base_config.with_level(0, size_bytes=2 * KB)
        large_l1 = base_config.with_level(0, size_bytes=32 * KB)
        best_small = (
            HierarchyOptimizer(small_l1, tech, small_traces)
            .optimize(sizes, set_sizes=(1,))
            .best.l2_size
        )
        best_large = (
            HierarchyOptimizer(large_l1, tech, small_traces)
            .optimize(sizes, set_sizes=(1,))
            .best.l2_size
        )
        assert best_large >= best_small


class TestSingleLevelCeiling:
    def test_interior_optimum_under_costly_growth(self, small_traces, base_config):
        """The single-level performance barrier: with cycle time growing in
        size, the best single-level cache is not the largest one."""
        tech = TechnologyModel(
            base_size=4 * KB, base_ns=10.0, ns_per_doubling=5.0,
            ns_per_way_doubling=11.0,
        )
        sizes = [4 * KB, 16 * KB, 64 * KB, 256 * KB]
        result = single_level_ceiling(base_config, tech, small_traces, sizes)
        assert result.best.config.levels[0].size_bytes < sizes[-1]

    def test_two_level_beats_single_level_ceiling(self, small_traces, base_config):
        """The paper's motivation: a two-level hierarchy breaks the
        single-level bound under the same technology."""
        tech = TechnologyModel(
            base_size=4 * KB, base_ns=10.0, ns_per_doubling=5.0,
            ns_per_way_doubling=11.0,
        )
        sizes = [4 * KB, 16 * KB, 64 * KB, 256 * KB]
        ceiling = single_level_ceiling(base_config, tech, small_traces, sizes)
        two_level = HierarchyOptimizer(
            base_config, technology(ns_per_doubling=4.0), small_traces
        ).optimize([32 * KB, 128 * KB, 512 * KB], set_sizes=(1, 2))
        assert two_level.best.total_cycles < ceiling.best.total_cycles

    def test_validation(self, small_traces, base_config):
        tech = technology()
        with pytest.raises(ValueError):
            single_level_ceiling(base_config, tech, [], [4 * KB])


class TestOptimalL1Sweep:

    def _sweep(self, small_traces, base_config, l2_speeds):
        from repro.core.optimizer import optimal_l1_sweep

        l1_tech = TechnologyModel(
            base_size=4 * KB, base_ns=10.0, ns_per_doubling=1.5,
            ns_per_way_doubling=0.0,
        )
        return optimal_l1_sweep(
            base_config, l1_tech, small_traces,
            l1_sizes=[2 * KB, 4 * KB, 8 * KB, 16 * KB],
            l2_cycle_ns_values=l2_speeds,
        )

    def test_one_candidate_list_per_l2_speed(self, small_traces, base_config):
        sweeps = self._sweep(small_traces, base_config, [30.0, 90.0])
        assert len(sweeps) == 2
        assert all(len(candidates) == 4 for candidates in sweeps)

    def test_cpu_cycle_follows_l1_technology(self, small_traces, base_config):
        sweeps = self._sweep(small_traces, base_config, [30.0])
        by_size = {c.l1_size: c for c in sweeps[0]}
        assert by_size[4 * KB].cpu_cycle_ns == pytest.approx(10.0)
        assert by_size[8 * KB].cpu_cycle_ns == pytest.approx(11.5)
        assert by_size[2 * KB].cpu_cycle_ns == pytest.approx(8.5)

    def test_l2_cycles_rounded_up_to_cpu_cycles(self, small_traces, base_config):
        sweeps = self._sweep(small_traces, base_config, [35.0])
        by_size = {c.l1_size: c for c in sweeps[0]}
        assert by_size[4 * KB].l2_cycle_cpu_cycles == 4.0  # 35/10 -> ceil

    def test_slow_l2_grows_optimal_l1(self, small_traces, base_config):
        """Section 6: a slow L2 pushes the optimal L1 above its minimum."""
        sweeps = self._sweep(small_traces, base_config, [20.0, 150.0])
        fast_best = min(sweeps[0], key=lambda c: c.total_ns).l1_size
        slow_best = min(sweeps[1], key=lambda c: c.total_ns).l1_size
        assert slow_best >= fast_best

    def test_validation(self, small_traces, base_config):
        from repro.core.optimizer import optimal_l1_sweep

        tech = technology()
        with pytest.raises(ValueError):
            optimal_l1_sweep(base_config, tech, [], [4 * KB], [30.0])
        with pytest.raises(ValueError):
            optimal_l1_sweep(base_config, tech, small_traces, [], [30.0])
