"""Tests for lines of constant performance and slope analysis."""

import numpy as np
import pytest

from repro.core.constant_performance import (
    horizontal_shift,
    lines_of_constant_performance,
    slope_field,
    slope_region_boundary,
)
from repro.core.design_space import AffineTimeModel, SpeedSizeGrid, execution_time_grid
from repro.units import KB


def synthetic_grid(bases, events, sizes=None, cycles=(1.0, 3.0, 5.0)):
    """A SpeedSizeGrid built from hand-picked affine models."""
    sizes = sizes or [2 ** (12 + i) for i in range(len(bases))]
    models = [
        AffineTimeModel(base=b, events_per_cycle=e, cpu_reads=1, cpu_writes=0)
        for b, e in zip(bases, events)
    ]
    grid = np.array([[m.total_cycles(c) for c in cycles] for m in models])
    return SpeedSizeGrid(
        sizes=sizes, cycle_times=list(cycles), total_cycles=grid, models=models
    )


class TestLines:
    def test_exact_inversion_on_synthetic_models(self):
        # Sizes halve the miss contribution: base falls, events constant.
        grid = synthetic_grid(bases=[2000.0, 1500.0, 1250.0], events=[100.0] * 3)
        lines = lines_of_constant_performance(grid, levels=[2.0])
        reference = grid.total_cycles.min()  # 1250 + 100*1 = 1350
        target = 2.0 * reference
        for i, base in enumerate([2000.0, 1500.0, 1250.0]):
            expected = (target - base) / 100.0
            assert lines.line(2.0)[i] == pytest.approx(expected)

    def test_larger_size_allows_longer_cycle(self):
        grid = synthetic_grid(bases=[2000.0, 1500.0, 1250.0], events=[100.0] * 3)
        line = lines_of_constant_performance(grid, levels=[1.5]).line(1.5)
        assert np.all(np.diff(line) > 0)

    def test_unreachable_levels_are_nan(self):
        grid = synthetic_grid(bases=[2000.0, 1500.0], events=[100.0] * 2)
        # A performance level better than the best achievable at size 0.
        lines = lines_of_constant_performance(grid, levels=[0.5])
        assert np.isnan(lines.line(0.5)).any()

    def test_slopes_positive_and_shrinking_with_size(self, small_traces, base_config):
        sizes = [8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB]
        grid = execution_time_grid(small_traces, base_config, sizes, [1.0, 3.0, 6.0])
        lines = lines_of_constant_performance(grid, levels=[1.4])
        slopes = lines.slopes(1.4)
        finite = slopes[np.isfinite(slopes)]
        assert np.all(finite > 0)
        # Diminishing returns: later doublings buy less cycle time.
        assert finite[-1] < finite[0]

    def test_validation(self):
        grid = synthetic_grid(bases=[2000.0], events=[100.0])
        with pytest.raises(ValueError):
            lines_of_constant_performance(grid, levels=[])
        with pytest.raises(ValueError):
            lines_of_constant_performance(grid, levels=[-1.0])
        with pytest.raises(ValueError):
            lines_of_constant_performance(grid, levels=[1.1], reference_cycles=0.0)


class TestSlopeField:
    def test_synthetic_slope_value(self):
        # One doubling between sizes; iso-line slope = (a0 - a1)/b.
        grid = synthetic_grid(
            bases=[2000.0, 1600.0], events=[100.0, 100.0],
            sizes=[4096, 8192],
        )
        field = slope_field(grid)
        assert field.shape == (1, 3)
        assert np.allclose(field, 4.0)  # (2000-1600)/100

    def test_slope_accounts_for_event_count_changes(self):
        grid = synthetic_grid(
            bases=[2000.0, 1600.0], events=[100.0, 80.0], sizes=[4096, 8192]
        )
        field = slope_field(grid)
        # c' = (2000 + 100c - 1600)/80; at c=1: c'=6.25, slope 5.25.
        assert field[0, 0] == pytest.approx(5.25)

    def test_measured_field_decreases_with_size(self, small_traces, base_config):
        sizes = [8 * KB, 32 * KB, 128 * KB]
        grid = execution_time_grid(small_traces, base_config, sizes, [3.0])
        field = slope_field(grid)
        assert field[0, 0] > field[1, 0]


class TestRegionBoundary:
    def make_grid(self, scale=1.0):
        # Slopes per doubling: 6, 3, 1.2, 0.4 (divided between 5 sizes).
        bases = np.array([3000.0, 2400.0, 2100.0, 1980.0, 1940.0]) * scale
        sizes = [int(4096 * 2**i * scale) if False else 4096 * 2**i for i in range(5)]
        return synthetic_grid(bases=list(bases), events=[100.0 * scale] * 5, sizes=sizes)

    def test_boundary_found_between_sizes(self):
        grid = self.make_grid()
        boundary = slope_region_boundary(grid, threshold=2.0, cycle_time=3.0)
        # Slopes: 6 (4K->8K), 3 (8K->16K), 1.2 (16K->32K): threshold 2.0
        # crossed between the 8-16K and 16-32K midpoints.
        assert 8192 * np.sqrt(2) < boundary < 16384 * np.sqrt(2)

    def test_boundary_none_when_slope_stays_high(self):
        grid = self.make_grid()
        assert slope_region_boundary(grid, threshold=0.1, cycle_time=3.0) is None

    def test_boundary_left_edge_when_already_flat(self):
        grid = self.make_grid()
        assert slope_region_boundary(grid, threshold=10.0, cycle_time=3.0) == 4096.0

    def test_invalid_threshold(self):
        grid = self.make_grid()
        with pytest.raises(ValueError):
            slope_region_boundary(grid, threshold=0.0, cycle_time=3.0)


class TestHorizontalShift:
    def test_shift_of_identical_grids_is_one(self):
        bases = [3000.0, 2400.0, 2100.0, 1980.0, 1940.0]
        a = synthetic_grid(bases=bases, events=[100.0] * 5)
        b = synthetic_grid(bases=bases, events=[100.0] * 5)
        assert horizontal_shift(a, b, threshold=2.0, cycle_time=3.0) == pytest.approx(1.0)

    def test_shifted_grid_reports_ratio(self):
        bases = [3000.0, 2400.0, 2100.0, 1980.0, 1940.0, 1925.0]
        sizes = [4096 * 2**i for i in range(6)]
        a = synthetic_grid(bases=bases, events=[100.0] * 6, sizes=sizes)
        # Same surface shifted one size to the right (each size behaves
        # like the previous one did).
        b = synthetic_grid(
            bases=[3600.0] + bases[:-1], events=[100.0] * 6, sizes=sizes
        )
        shift = horizontal_shift(a, b, threshold=2.0, cycle_time=3.0)
        assert shift == pytest.approx(2.0, rel=0.05)

    def test_none_when_boundary_escapes(self):
        bases = [3000.0, 2400.0, 2100.0, 1980.0, 1940.0]
        a = synthetic_grid(bases=bases, events=[100.0] * 5)
        b = synthetic_grid(bases=bases, events=[100.0] * 5)
        assert horizontal_shift(a, b, threshold=0.01, cycle_time=3.0) is None
