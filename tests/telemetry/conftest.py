"""Shared fixtures for the telemetry tests.

Every test starts from a pristine recorder with telemetry *enabled* and
a sink under ``tmp_path`` (tests covering the disabled path flip the
env var and :func:`repro.telemetry.reset` themselves).  Traces are
deliberately small: these tests pin recording semantics, not
simulation fidelity.
"""

import pytest

from repro import telemetry
from repro.sim import memo
from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


@pytest.fixture(autouse=True)
def fresh_telemetry(tmp_path, monkeypatch):
    """Telemetry on, sink in tmp_path, recorder state reset around each
    test (the recorder is module-global, like the memo cache)."""
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    monkeypatch.setenv(
        "REPRO_TELEMETRY_PATH", str(tmp_path / "run.telemetry.jsonl")
    )
    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts from an empty cache and zeroed counters."""
    memo.clear_memo_cache()
    yield
    memo.clear_memo_cache()


@pytest.fixture(scope="session")
def tiny_traces():
    """Two small single-process traces with distinct seeds."""
    return [
        SyntheticWorkload(seed=23 + t, address_base=t << 40).trace(
            6_000, name=f"tele{t}", warmup=1_000
        )
        for t in range(2)
    ]


@pytest.fixture(scope="session")
def tiny_config():
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=2 * KB, block_bytes=16,
                        cycle_cpu_cycles=1, write_hit_cycles=2),
            LevelConfig(size_bytes=32 * KB, block_bytes=32,
                        cycle_cpu_cycles=3, write_hit_cycles=2),
        )
    )


@pytest.fixture
def config_grid(tiny_config):
    """Eight functionally-distinct configurations (L1 size axis)."""
    return [
        tiny_config.with_level(0, size_bytes=size)
        for size in (1 * KB, 2 * KB, 4 * KB, 8 * KB,
                     16 * KB, 32 * KB, 64 * KB, 128 * KB)
    ]
