"""Sink parsing, Chrome trace export, the report renderer and the CLI.

These consume a *real* sink written by the runtime (not hand-rolled
fixtures) so the format contract is pinned end to end, then damage it
the way a SIGKILL would to pin the tolerance rules.
"""

import json

from repro import telemetry
from repro.telemetry.cli import main as telemetry_cli
from repro.telemetry.export import (
    chrome_trace,
    export_chrome_trace,
    read_sink,
)
from repro.telemetry.report import render_report, report_text


def write_sink(tmp_path):
    """Record a small nested run and return the sink path."""
    with telemetry.span("sweep.functional", configs=2, traces=2):
        with telemetry.span("sweep.plan"):
            pass
        with telemetry.span("pool.run", kind="functional", workers=2):
            telemetry.counter_add("pool.jobs", 2)
            telemetry.absorb_worker({
                "events": [
                    {"id": "4242:1", "parent": None, "pid": 4242,
                     "name": "worker.functional",
                     "path": "worker.functional", "t0": 5, "t1": 9},
                ],
                "counters": {"memo.misses": 2},
                "gauges": {},
            })
    telemetry.close_sink()
    return tmp_path / "run.telemetry.jsonl"


class TestReadSink:
    def test_clean_sink_parses_fully(self, tmp_path):
        content = read_sink(write_sink(tmp_path))
        assert len(content.meta) == 1
        assert len(content.spans) == 4
        assert len(content.counts) == 1
        assert content.bad_lines == 0
        assert content.torn_tail_bytes == 0

    def test_torn_tail_is_counted_not_fatal(self, tmp_path):
        sink = write_sink(tmp_path)
        with open(sink, "a", encoding="utf-8") as handle:
            handle.write('{"k":"span","id":"9:9","name":"tor')
        content = read_sink(sink)
        assert len(content.spans) == 4  # the complete lines all survive
        assert content.torn_tail_bytes > 0

    def test_malformed_span_line_is_a_bad_line(self, tmp_path):
        sink = write_sink(tmp_path)
        with open(sink, "a", encoding="utf-8") as handle:
            handle.write('{"k":"span","id":"9:9"}\n')  # no name/t0/t1
            handle.write("not json either\n")
        content = read_sink(sink)
        assert len(content.spans) == 4
        assert content.bad_lines == 2


class TestChromeTrace:
    def test_export_shape(self, tmp_path):
        content = read_sink(write_sink(tmp_path))
        trace = chrome_trace(content)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        assert all(e["ts"] >= 0 for e in complete)  # anchored at min t0
        names = {e["name"] for e in complete}
        assert {"sweep.functional", "worker.functional"} <= names
        by_name = {e["name"]: e for e in complete}
        assert by_name["sweep.functional"]["cat"] == "sweep"
        assert by_name["sweep.functional"]["args"]["configs"] == 2
        # Two process tracks: the supervisor and the (fake) worker.
        meta = [e for e in events if e["ph"] == "M"]
        track_names = {e["args"]["name"] for e in meta}
        assert any(n.startswith("supervisor") for n in track_names)
        assert any(n.startswith("worker") for n in track_names)
        counters = [e for e in events if e["ph"] == "C"]
        assert {"pool.jobs", "memo.misses"} <= {e["name"] for e in counters}

    def test_export_writes_loadable_json(self, tmp_path):
        sink = write_sink(tmp_path)
        out = tmp_path / "trace.perfetto.json"
        spans, skipped = export_chrome_trace(sink, out)
        assert (spans, skipped) == (4, 0)
        assert json.loads(out.read_text(encoding="utf-8"))["traceEvents"]


class TestReport:
    def test_phase_table_and_counters(self, tmp_path):
        text = report_text(write_sink(tmp_path))
        assert "sweep.functional" in text
        assert "worker.functional" in text
        # Indentation shows the tree; percentages are of the root total.
        assert "100.0" in text
        assert "pool.jobs" in text
        assert "memo.misses" in text

    def test_torn_sink_report_points_at_the_doctor(self, tmp_path):
        sink = write_sink(tmp_path)
        with open(sink, "a", encoding="utf-8") as handle:
            handle.write('{"k":"span","id":"9:9","name":"tor')
        text = render_report(read_sink(sink))
        assert "doctor" in text

    def test_orphan_spans_are_promoted_to_roots(self, tmp_path):
        sink = tmp_path / "orphan.telemetry.jsonl"
        sink.write_text(
            '{"k":"span","id":"7:2","parent":"7:1","pid":7,'
            '"name":"fast.run","t0":100,"t1":200}\n'
        )
        text = report_text(sink)  # parent 7:1 never closed (SIGKILL)
        assert "fast.run" in text


class TestCli:
    def test_report_and_export_commands(self, tmp_path, capsys):
        sink = write_sink(tmp_path)
        assert telemetry_cli(["report", str(sink)]) == 0
        out = tmp_path / "out.json"
        assert telemetry_cli(["export", str(sink), "-o", str(out)]) == 0
        captured = capsys.readouterr()
        assert "sweep.functional" in captured.out
        assert str(out) in captured.out
        assert out.exists()

    def test_default_output_name(self, tmp_path, capsys):
        sink = write_sink(tmp_path)
        assert telemetry_cli(["export", str(sink)]) == 0
        assert sink.with_suffix(".jsonl.perfetto.json").exists()

    def test_missing_sink_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope.telemetry.jsonl"
        assert telemetry_cli(["report", str(missing)]) == 2
        assert "telemetry sink not found" in capsys.readouterr().err
