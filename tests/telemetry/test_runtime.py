"""Recorder semantics: spans, counters, marks, worker merge, no-op mode.

The runtime contract under test: enabled recording builds a faithful
span tree and counter totals; disabled recording is a shared no-op that
touches nothing; worker payloads merge losslessly (spans re-parented,
counters added, gauges maxed); and the manifest aggregation covers
exactly the window after its mark.
"""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry import runtime


def paths():
    return [event["path"] for event in telemetry.iter_events()]


class TestSpans:
    def test_nesting_builds_paths_and_parents(self):
        with telemetry.span("outer"):
            with telemetry.span("middle"):
                with telemetry.span("inner"):
                    pass
            with telemetry.span("middle"):
                pass
        # Close order: children before parents.
        assert paths() == [
            "outer/middle/inner", "outer/middle", "outer/middle", "outer",
        ]
        events = {e["path"]: e for e in telemetry.iter_events()}
        outer = events["outer"]
        inner = events["outer/middle/inner"]
        assert outer["parent"] is None
        assert inner["parent"] is not None
        assert inner["t0"] >= outer["t0"]
        assert inner["t1"] <= outer["t1"]
        assert all(e["pid"] == os.getpid() for e in events.values())

    def test_attrs_ride_along(self):
        with telemetry.span("stackdist.pass", sets=64, records=1000):
            pass
        (event,) = telemetry.iter_events()
        assert event["a"] == {"sets": 64, "records": 1000}

    def test_span_ids_are_unique(self):
        for _ in range(5):
            with telemetry.span("tick"):
                pass
        ids = [e["id"] for e in telemetry.iter_events()]
        assert len(set(ids)) == 5


class TestCounters:
    def test_add_and_snapshot(self):
        telemetry.counter_add("pool.jobs")
        telemetry.counter_add("pool.jobs", 2)
        telemetry.gauge_set("memo.entries", 7)
        telemetry.gauge_set("memo.entries", 3)  # last observation wins
        snap = telemetry.counters_snapshot()
        assert snap["pool.jobs"] == 3
        assert snap["memo.entries"] == 3

    def test_undeclared_counter_rejected(self):
        with pytest.raises(KeyError, match="not a declared counter"):
            telemetry.counter_add("made.up")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(KeyError):  # memo.entries is a gauge
            telemetry.counter_add("memo.entries")
        with pytest.raises(KeyError):  # pool.jobs is a counter
            telemetry.gauge_set("pool.jobs", 1)


class TestDisabled:
    @pytest.fixture(autouse=True)
    def disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.reset()

    def test_span_is_the_shared_noop(self):
        first = telemetry.span("anything", sets=1)
        second = telemetry.span("else")
        assert first is second  # one shared object, zero allocation
        with first:
            pass
        assert list(telemetry.iter_events()) == []

    def test_counters_skip_validation_entirely(self):
        # The disabled fast path returns before the catalog lookup:
        # no dict probe, no KeyError, no state.
        telemetry.counter_add("not.even.declared")
        telemetry.gauge_set("also.bogus", 9)
        assert telemetry.counters_snapshot() == {}

    def test_manifest_section_reports_disabled(self):
        assert telemetry.manifest_section() == {"enabled": False}

    def test_no_sink_file_is_created(self, tmp_path):
        with telemetry.span("quiet"):
            pass
        telemetry.close_sink()
        assert not (tmp_path / "run.telemetry.jsonl").exists()


class TestWorkerMerge:
    def test_absorb_reparents_and_prefixes(self):
        worker_payload = {
            "events": [
                {"id": "999:1", "parent": None, "pid": 999,
                 "name": "worker.functional", "path": "worker.functional",
                 "t0": 10, "t1": 20},
                {"id": "999:2", "parent": "999:1", "pid": 999,
                 "name": "fast.run", "path": "worker.functional/fast.run",
                 "t0": 12, "t1": 18},
            ],
            "counters": {"memo.misses": 4},
            "gauges": {"memo.entries": 6},
        }
        telemetry.counter_add("memo.misses", 1)
        telemetry.gauge_set("memo.entries", 2)
        with telemetry.span("pool.run") as pool_span:
            telemetry.absorb_worker(worker_payload)
        events = {e["id"]: e for e in telemetry.iter_events()}
        # The worker root now hangs off the supervisor's open span ...
        assert events["999:1"]["parent"] == pool_span._id
        assert events["999:1"]["path"] == "pool.run/worker.functional"
        # ... and the worker-internal parent link is untouched.
        assert events["999:2"]["parent"] == "999:1"
        assert events["999:2"]["path"] == "pool.run/worker.functional/fast.run"
        snap = telemetry.counters_snapshot()
        assert snap["memo.misses"] == 5  # counters add
        assert snap["memo.entries"] == 6  # gauges keep the max

    def test_absorb_none_is_a_noop(self):
        telemetry.absorb_worker(None)
        assert list(telemetry.iter_events()) == []

    def test_enter_worker_clears_inherited_state(self):
        telemetry.counter_add("pool.jobs")
        with telemetry.span("inherited"):
            pass
        runtime.enter_worker()
        assert list(telemetry.iter_events()) == []
        assert telemetry.counters_snapshot() == {}
        assert telemetry.drain_worker() is None  # nothing recorded yet

    def test_drain_returns_buffer_then_resets(self):
        runtime.enter_worker()
        with telemetry.span("worker.functional", cells=3):
            telemetry.counter_add("memo.hits", 2)
        payload = telemetry.drain_worker()
        assert payload is not None
        assert [e["name"] for e in payload["events"]] == ["worker.functional"]
        assert payload["counters"] == {"memo.hits": 2}
        assert telemetry.drain_worker() is None


class TestMarksAndManifest:
    def test_section_covers_only_the_window_after_the_mark(self):
        with telemetry.span("before"):
            telemetry.counter_add("pool.jobs", 10)
        mark = telemetry.mark()
        with telemetry.span("sweep.functional"):
            with telemetry.span("sweep.plan"):
                pass
            telemetry.counter_add("pool.jobs", 2)
        section = telemetry.manifest_section(mark)
        assert section["enabled"] is True
        assert set(section["phase_ns"]) == {"sweep.functional"}
        tree = section["phase_ns"]["sweep.functional"]
        assert tree["count"] == 1
        assert tree["children"]["sweep.plan"]["count"] == 1
        assert tree["ns"] >= tree["children"]["sweep.plan"]["ns"] > 0
        assert section["counters"] == {"pool.jobs": 2}

    def test_drop_cap_counts_rather_than_grows(self, monkeypatch):
        monkeypatch.setattr(runtime, "_MAX_EVENTS", 3)
        for _ in range(5):
            with telemetry.span("tick"):
                pass
        assert len(list(telemetry.iter_events())) == 3
        section = telemetry.manifest_section()
        assert section["dropped_events"] == 2
        assert section["counters"]["telemetry.dropped"] == 2


class TestSink:
    def test_sink_layout(self, tmp_path):
        with telemetry.span("sweep.functional", configs=2):
            telemetry.counter_add("pool.jobs", 4)
            with telemetry.span("sweep.plan"):
                pass
        telemetry.close_sink()
        lines = [
            json.loads(line)
            for line in (tmp_path / "run.telemetry.jsonl")
            .read_text(encoding="utf-8").splitlines()
        ]
        assert lines[0]["k"] == "meta"
        assert lines[0]["schema"] == runtime.SINK_SCHEMA
        assert lines[0]["pid"] == os.getpid()
        spans = [line for line in lines if line["k"] == "span"]
        # Close order: the plan span line lands before its parent.
        assert [s["name"] for s in spans] == ["sweep.plan", "sweep.functional"]
        assert spans[0]["parent"] == spans[1]["id"]
        assert "path" not in spans[0]  # sink lines carry ids, not paths
        counts = [line for line in lines if line["k"] == "count"]
        assert counts and counts[-1]["c"]["pool.jobs"] == 4

    def test_counter_totals_flush_once_per_root_close(self, tmp_path):
        with telemetry.span("root"):
            telemetry.counter_add("pool.jobs")
        with telemetry.span("root"):
            pass  # no counter movement: no second count line
        telemetry.close_sink()
        lines = (tmp_path / "run.telemetry.jsonl").read_text().splitlines()
        kinds = [json.loads(line)["k"] for line in lines]
        assert kinds.count("count") == 1
