"""Recording must never change results; spans must account for time.

Two acceptance-grade properties: the disabled path is a true no-op (a
sweep digests identically with telemetry on, off, or unset), and an
enabled sweep's root spans account for essentially all of its wall
clock -- including time spent inside worker processes, which reaches
the tree only via the re-parenting channel.
"""

import hashlib

from repro import telemetry
from repro.core import clock
from repro.core.sweep import sweep_functional
from repro.sim import memo


def grid_digest(grid):
    hasher = hashlib.sha256()
    for row in grid:
        for cell in row:
            hasher.update(repr((
                cell.cpu_reads, cell.cpu_writes,
                tuple(
                    (s.reads, s.read_misses, s.writes, s.write_misses,
                     s.writebacks)
                    for s in cell.level_stats
                ),
                cell.memory_reads, cell.memory_writes,
            )).encode())
    return hasher.hexdigest()


def test_sweep_digest_identical_on_off_unset(
    tiny_traces, config_grid, monkeypatch
):
    digests = {}
    for mode in ("1", "0", None):
        if mode is None:
            monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        else:
            monkeypatch.setenv("REPRO_TELEMETRY", mode)
        telemetry.reset()
        memo.clear_memo_cache()
        digests[mode] = grid_digest(sweep_functional(tiny_traces, config_grid))
    assert digests["1"] == digests["0"] == digests[None]


def test_root_spans_account_for_wall_clock(tiny_traces, config_grid):
    """The 32-cell acceptance sweep: the phase tree's root totals must
    land within 5% of the measured wall clock, worker time included."""
    configs = config_grid + [
        config.with_level(1, cycle_cpu_cycles=5) for config in config_grid
    ]
    cells = len(configs) * len(tiny_traces)
    assert cells == 32

    watch = clock.Stopwatch()
    sweep_functional(tiny_traces, configs, workers=2)
    wall_ns = watch.elapsed_ns()

    events = list(telemetry.iter_events())
    root_ns = sum(
        event["t1"] - event["t0"]
        for event in events
        if event["parent"] is None
    )
    assert root_ns > 0
    # The sweep.functional span opens on entry and closes on return, so
    # its total may differ from our stopwatch only by call glue.
    assert abs(root_ns - wall_ns) / wall_ns <= 0.05, (
        f"root spans {root_ns}ns vs wall {wall_ns}ns"
    )
    # Worker time is inside the tree, not lost: when the pool ran, the
    # worker spans hang off pool.run in the aggregated phase tree.
    tree = telemetry.phase_tree(events)
    assert "sweep.functional" in tree
    pool = tree["sweep.functional"].get("children", {}).get("pool.run")
    if pool is not None:  # pool may be skipped on 1-CPU fallbacks
        workers = [
            name for name in pool.get("children", {})
            if name.startswith("worker.")
        ]
        assert workers, "pooled sweep produced no worker spans"
