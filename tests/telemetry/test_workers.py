"""Cross-process telemetry: worker spans and counters over the pool.

Worker processes buffer spans and counters, ship them with each result
message, and the supervisor re-parents them under its live sweep span.
The contract must hold under both ``fork`` (state inherited, then
cleared by ``enter_worker``) and ``spawn`` (nothing inherited; workers
re-resolve REPRO_TELEMETRY from the environment).
"""

import os

import pytest

from repro import telemetry
from repro.core.sweep import sweep_functional


def run_sweep(traces, configs, monkeypatch, method):
    monkeypatch.setenv("REPRO_SWEEP_CONTEXT", method)
    telemetry.reset()
    return sweep_functional(traces, configs, workers=2)


@pytest.mark.parametrize("method", ["fork", "spawn"])
class TestPooledTelemetry:
    def test_worker_spans_reparent_under_the_sweep(
        self, tiny_traces, config_grid, monkeypatch, method
    ):
        run_sweep(tiny_traces, config_grid, monkeypatch, method)
        events = list(telemetry.iter_events())
        worker_events = [
            e for e in events if e["name"].startswith("worker.")
        ]
        assert worker_events, "no worker spans came back over the pipe"
        # Worker spans were recorded in another process ...
        assert all(e["pid"] != os.getpid() for e in worker_events)
        # ... and re-rooted under the supervisor's pool span, so the
        # phase tree attributes their time to the sweep.
        for event in worker_events:
            assert event["path"].startswith("sweep.functional/pool.run/"), (
                event["path"]
            )
        tree = telemetry.phase_tree(events)
        pool_node = tree["sweep.functional"]["children"]["pool.run"]
        assert any(
            name.startswith("worker.") for name in pool_node["children"]
        )

    def test_worker_counters_merge_into_supervisor_totals(
        self, tiny_traces, config_grid, monkeypatch, method
    ):
        grid = run_sweep(tiny_traces, config_grid, monkeypatch, method)
        snap = telemetry.counters_snapshot()
        assert snap["pool.jobs"] >= 1
        # Every cell's memo lookup happened inside a worker; the misses
        # travelled back over the telemetry channel, not the fold.
        cells = sum(1 for row in grid for cell in row if cell is not None)
        assert snap["memo.misses"] >= 1
        assert snap.get("memo.hits", 0) + snap["memo.misses"] >= 1
        assert cells == len(grid) * len(tiny_traces)

    def test_counter_merge_is_additive_across_jobs(
        self, tiny_traces, config_grid, monkeypatch, method
    ):
        """Two pooled sweeps double the job count: per-job payloads add
        instead of overwriting each other."""
        from repro.sim import memo

        run_sweep(tiny_traces, config_grid[:2], monkeypatch, method)
        first = telemetry.counters_snapshot().get("pool.jobs", 0)
        assert first >= 1
        memo.clear_memo_cache()  # or the second sweep is all cache hits
        sweep_functional(tiny_traces, config_grid[:2], workers=2)
        second = telemetry.counters_snapshot().get("pool.jobs", 0)
        assert second > first
