"""Behavioural tests for a single cache level."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheGeometry, FetchPolicy, WritePolicy


def small_cache(**kwargs):
    defaults = dict(
        geometry=CacheGeometry(size_bytes=256, block_bytes=16, associativity=2)
    )
    defaults.update(kwargs)
    return Cache(**defaults)


class TestReadPath:
    def test_first_read_misses_and_fetches(self):
        cache = small_cache()
        outcome = cache.read(0x1000)
        assert not outcome.hit
        assert outcome.fetched == [0x1000]
        assert cache.stats.read_misses == 1

    def test_second_read_hits(self):
        cache = small_cache()
        cache.read(0x1000)
        outcome = cache.read(0x1008)  # same 16-byte block
        assert outcome.hit
        assert cache.stats.reads == 2
        assert cache.stats.read_misses == 1

    def test_fetched_address_is_block_aligned(self):
        cache = small_cache()
        outcome = cache.read(0x1237)
        assert outcome.fetched == [0x1230]

    def test_eviction_on_conflict(self):
        # Direct-mapped 4-set cache: addresses 0x00 and 0x100 share set 0.
        cache = Cache(CacheGeometry(64, 16, 1))
        cache.read(0x00)
        cache.read(0x100)
        assert not cache.contains(0x00)
        assert cache.contains(0x100)

    def test_lru_keeps_recently_used(self):
        cache = Cache(CacheGeometry(32, 16, 2))  # one set, two ways
        cache.read(0x00)
        cache.read(0x10)
        cache.read(0x00)  # touch 0x00 so 0x10 is LRU
        cache.read(0x20)  # evicts 0x10
        assert cache.contains(0x00)
        assert not cache.contains(0x10)
        assert cache.contains(0x20)


class TestWriteBack:
    def test_write_hit_marks_dirty(self):
        cache = small_cache()
        cache.read(0x40)
        cache.write(0x40)
        assert cache.is_dirty(0x40)

    def test_write_miss_allocates_and_dirties(self):
        cache = small_cache()
        outcome = cache.write(0x40)
        assert not outcome.hit
        assert outcome.fetched == [0x40]  # fetch-on-write (write-allocate)
        assert cache.is_dirty(0x40)

    def test_dirty_eviction_produces_writeback(self):
        cache = Cache(CacheGeometry(64, 16, 1))
        cache.write(0x00)
        outcome = cache.read(0x100)  # conflicts with 0x00
        assert outcome.writebacks == [0x00]
        assert cache.stats.writebacks == 1

    def test_clean_eviction_is_silent(self):
        cache = Cache(CacheGeometry(64, 16, 1))
        cache.read(0x00)
        outcome = cache.read(0x100)
        assert outcome.writebacks == []

    def test_no_forwarded_write_on_writeback_hit(self):
        cache = small_cache()
        cache.read(0x40)
        assert cache.write(0x40).forwarded_write is None


class TestWriteThrough:
    def test_write_hit_forwards_downstream(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.read(0x40)
        outcome = cache.write(0x44)
        assert outcome.hit
        assert outcome.forwarded_write == 0x40
        assert not cache.is_dirty(0x40)

    def test_write_miss_with_allocate_fetches_and_forwards(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH)
        outcome = cache.write(0x40)
        assert outcome.fetched == [0x40]
        assert outcome.forwarded_write == 0x40

    def test_write_miss_without_allocate_bypasses(self):
        cache = small_cache(
            write_policy=WritePolicy.WRITE_THROUGH,
            fetch=FetchPolicy(write_allocate=False),
        )
        outcome = cache.write(0x40)
        assert outcome.fetched == []
        assert outcome.forwarded_write == 0x40
        assert not cache.contains(0x40)

    def test_evictions_never_write_back(self):
        cache = Cache(
            CacheGeometry(64, 16, 1), write_policy=WritePolicy.WRITE_THROUGH
        )
        cache.write(0x00)
        outcome = cache.write(0x100)
        assert outcome.writebacks == []

    def test_policy_parse_accepts_strings(self):
        cache = small_cache(write_policy="write-through")
        assert cache.write_policy is WritePolicy.WRITE_THROUGH

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown write policy"):
            small_cache(write_policy="write-sometimes")


class TestFetchPolicy:
    def test_fetch_group_brings_neighbours(self):
        cache = Cache(
            CacheGeometry(256, 16, 1), fetch=FetchPolicy(fetch_blocks=2)
        )
        outcome = cache.read(0x30)  # block 3; group = blocks 2,3
        fetched = sorted(outcome.fetched)
        assert fetched == [0x20, 0x30]
        assert cache.contains(0x20)
        assert cache.stats.prefetched_blocks == 1

    def test_fetch_group_skips_resident_neighbours(self):
        cache = Cache(
            CacheGeometry(256, 16, 1), fetch=FetchPolicy(fetch_blocks=2)
        )
        cache.read(0x20)
        cache.invalidate_all()
        cache.read(0x20)  # group = 0x20,0x30
        outcome = cache.read(0x1000)
        assert 0x30 not in outcome.fetched or True  # sanity; detailed below
        cache2 = Cache(CacheGeometry(256, 16, 1), fetch=FetchPolicy(fetch_blocks=2))
        cache2.read(0x20)          # fills 0x20 and 0x30
        outcome = cache2.read(0x30)
        assert outcome.hit

    def test_fetch_blocks_cannot_exceed_sets(self):
        with pytest.raises(ValueError, match="fetch_blocks"):
            Cache(CacheGeometry(32, 16, 1), fetch=FetchPolicy(fetch_blocks=4))

    def test_fetch_group_alignment(self):
        policy = FetchPolicy(fetch_blocks=4)
        assert list(policy.fetch_group(6)) == [4, 5, 6, 7]
        assert list(policy.fetch_group(4)) == [4, 5, 6, 7]


class TestCountingControl:
    def test_counting_disabled_updates_state_only(self):
        cache = small_cache()
        cache.counting = False
        cache.read(0x40)
        cache.write(0x80)
        assert cache.stats.accesses == 0
        assert cache.contains(0x40)
        cache.counting = True
        assert cache.read(0x40).hit
        assert cache.stats.reads == 1


class TestMaintenance:
    def test_flush_returns_dirty_blocks_and_empties(self):
        cache = small_cache()
        cache.write(0x40)
        cache.read(0x80)
        dirty = cache.flush()
        assert dirty == [0x40]
        assert cache.occupancy() == 0.0

    def test_invalidate_all_discards_dirty_data(self):
        cache = small_cache()
        cache.write(0x40)
        cache.invalidate_all()
        assert not cache.contains(0x40)

    def test_resident_blocks_roundtrip(self):
        cache = small_cache()
        for address in (0x40, 0x80, 0x2000):
            cache.read(address)
        assert sorted(cache.resident_blocks()) == [0x40, 0x80, 0x2000]

    def test_occupancy_bounds(self):
        cache = Cache(CacheGeometry(64, 16, 2))
        assert cache.occupancy() == 0.0
        for i in range(32):
            cache.read(i * 16)
        assert cache.occupancy() == 1.0


class ReferenceFullyAssociativeLRU:
    """Oracle model: ordered dict as an LRU list."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []

    def access(self, block):
        hit = block in self.order
        if hit:
            self.order.remove(block)
        elif len(self.order) >= self.capacity:
            self.order.pop()
        self.order.insert(0, block)
        return hit


@settings(max_examples=40, deadline=None)
@given(
    refs=st.lists(st.integers(0, 63), min_size=1, max_size=400),
    capacity_exp=st.integers(2, 5),
)
def test_fully_associative_lru_matches_oracle(refs, capacity_exp):
    capacity = 2**capacity_exp
    cache = Cache(CacheGeometry(capacity * 16, 16, capacity))
    oracle = ReferenceFullyAssociativeLRU(capacity)
    for block in refs:
        outcome = cache.read(block * 16)
        assert outcome.hit == oracle.access(block)


@settings(max_examples=40, deadline=None)
@given(refs=st.lists(st.integers(0, 255), min_size=1, max_size=400))
def test_direct_mapped_matches_oracle(refs):
    sets = 16
    cache = Cache(CacheGeometry(sets * 16, 16, 1))
    resident = {}
    for block in refs:
        index = block % sets
        hit = resident.get(index) == block
        assert cache.read(block * 16).hit == hit
        resident[index] = block


class TestPolicyBehaviouralDifferences:
    def test_fifo_and_lru_diverge_on_reuse(self):
        """A re-referenced block survives under LRU but not under FIFO."""
        lru = Cache(CacheGeometry(32, 16, 2), replacement="lru")
        fifo = Cache(CacheGeometry(32, 16, 2), replacement="fifo")
        for cache in (lru, fifo):
            cache.read(0x00)  # oldest
            cache.read(0x10)
            cache.read(0x00)  # reuse: protects it under LRU only
            cache.read(0x20)  # eviction decision differs
        assert lru.contains(0x00)
        assert not lru.contains(0x10)
        assert not fifo.contains(0x00)
        assert fifo.contains(0x10)

    def test_random_policy_is_seed_deterministic(self):
        from repro.cache.replacement import RandomReplacement

        def run(seed):
            cache = Cache(
                CacheGeometry(64, 16, 4),
                replacement=RandomReplacement(seed=seed),
            )
            for i in range(32):
                cache.read((i % 9) * 16 + (i // 3) * 256)
            return sorted(cache.resident_blocks())

        assert run(5) == run(5)
