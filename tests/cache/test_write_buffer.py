"""Tests for the inter-level write buffer timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.write_buffer import WriteBuffer


class TestPush:
    def test_push_into_empty_buffer_is_free(self):
        buffer = WriteBuffer(capacity=4, service_time=30.0)
        assert buffer.push(0x100, now=0.0) == 0.0
        assert len(buffer) == 1

    def test_pushes_fill_capacity_without_stall(self):
        buffer = WriteBuffer(capacity=4, service_time=1000.0)
        for i in range(4):
            assert buffer.push(i, now=0.0) == 0.0
        assert len(buffer) == 4

    def test_push_into_full_buffer_stalls_for_one_drain(self):
        buffer = WriteBuffer(capacity=2, service_time=30.0)
        buffer.push(1, now=0.0)
        buffer.push(2, now=0.0)
        completion = buffer.push(3, now=0.0)
        assert completion == 30.0
        assert buffer.full_stalls == 1

    def test_background_drain_frees_slots(self):
        buffer = WriteBuffer(capacity=2, service_time=30.0)
        buffer.push(1, now=0.0)
        buffer.push(2, now=0.0)
        # By t=70 both entries have drained (finish at 30 and 60).
        assert buffer.push(3, now=70.0) == 70.0
        assert buffer.full_stalls == 0
        assert len(buffer) == 1


class TestReadFence:
    def test_unrelated_read_bypasses(self):
        buffer = WriteBuffer(capacity=4, service_time=30.0)
        buffer.push(0x100, now=0.0)
        # The first entry starts draining immediately (finishes at 30), so an
        # unrelated read at t=5 waits only for the drain in progress.
        assert buffer.read_fence(0x999, now=5.0) == 30.0
        assert buffer.read_matches == 0

    def test_unrelated_read_after_drain_is_free(self):
        buffer = WriteBuffer(capacity=4, service_time=30.0)
        buffer.push(0x100, now=0.0)
        assert buffer.read_fence(0x999, now=100.0) == 100.0

    def test_matching_read_waits_for_entry(self):
        buffer = WriteBuffer(capacity=4, service_time=30.0)
        buffer.push(0x100, now=0.0)
        buffer.push(0x200, now=0.0)
        fence = buffer.read_fence(0x200, now=0.0)
        # Both entries must drain: 30 + 30.
        assert fence == 60.0
        assert buffer.read_matches == 1
        assert len(buffer) == 0

    def test_matching_read_only_drains_up_to_match(self):
        buffer = WriteBuffer(capacity=4, service_time=30.0)
        buffer.push(0x100, now=0.0)
        buffer.push(0x200, now=0.0)
        buffer.push(0x300, now=0.0)
        buffer.read_fence(0x200, now=0.0)
        assert len(buffer) == 1  # 0x300 still pending

    def test_latest_matching_entry_wins(self):
        """Two buffered writes to the same block: both must drain before the
        read (FIFO order preserves write ordering)."""
        buffer = WriteBuffer(capacity=4, service_time=10.0)
        buffer.push(0x100, now=0.0)
        buffer.push(0x200, now=0.0)
        buffer.push(0x100, now=0.0)
        assert buffer.read_fence(0x100, now=0.0) == 30.0
        assert buffer.is_empty


class TestFlush:
    def test_flush_drains_everything(self):
        buffer = WriteBuffer(capacity=4, service_time=25.0)
        for i in range(3):
            buffer.push(i, now=0.0)
        finish = buffer.flush(now=0.0)
        assert finish == 75.0
        assert buffer.is_empty

    def test_flush_empty_buffer_is_instant(self):
        buffer = WriteBuffer()
        assert buffer.flush(now=42.0) == 42.0


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            WriteBuffer(capacity=0)

    def test_service_time_must_be_positive(self):
        with pytest.raises(ValueError):
            WriteBuffer(service_time=0.0)


class TestStatistics:
    def test_total_pushes_counted(self):
        buffer = WriteBuffer(capacity=2, service_time=5.0)
        for i in range(5):
            buffer.push(i, now=i * 100.0)
        assert buffer.total_pushes == 5


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "fence", "drain"]),
            st.integers(0, 7),       # block id
            st.floats(0.0, 50.0),    # time increment
        ),
        max_size=60,
    ),
    capacity=st.integers(1, 6),
)
def test_write_buffer_invariants(ops, capacity):
    """Time only moves forward, occupancy stays within capacity, and
    results are never earlier than the request time."""
    buffer = WriteBuffer(capacity=capacity, service_time=10.0)
    now = 0.0
    pushes = 0
    for op, block, dt in ops:
        now += dt
        if op == "push":
            done = buffer.push(block, now)
            pushes += 1
            assert done >= now - 1e-9
        elif op == "fence":
            fence = buffer.read_fence(block, now)
            assert fence >= now - 1e-9
        else:
            buffer.drain_until(now)
        assert 0 <= len(buffer) <= capacity
    assert buffer.total_pushes == pushes
    finish = buffer.flush(now)
    assert finish >= now - 1e-9
    assert buffer.is_empty
