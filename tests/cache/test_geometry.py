"""Tests for cache geometry and address decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.units import KB


class TestConstruction:
    def test_basic_derived_quantities(self):
        geometry = CacheGeometry(size_bytes=4 * KB, block_bytes=16, associativity=2)
        assert geometry.blocks == 256
        assert geometry.sets == 128
        assert geometry.offset_bits == 4
        assert geometry.index_bits == 7

    def test_direct_mapped(self):
        geometry = CacheGeometry(size_bytes=2 * KB, block_bytes=16)
        assert geometry.is_direct_mapped
        assert not geometry.is_fully_associative

    def test_fully_associative(self):
        geometry = CacheGeometry(size_bytes=1 * KB, block_bytes=16, associativity=64)
        assert geometry.is_fully_associative

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 3000, "block_bytes": 16},
            {"size_bytes": 4096, "block_bytes": 24},
            {"size_bytes": 4096, "block_bytes": 16, "associativity": 3},
            {"size_bytes": 16, "block_bytes": 32},
            {"size_bytes": 64, "block_bytes": 32, "associativity": 4},
        ],
    )
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CacheGeometry(**kwargs)

    def test_scaled_copies_fields(self):
        geometry = CacheGeometry(size_bytes=4 * KB, block_bytes=32, associativity=2)
        bigger = geometry.scaled(size_bytes=8 * KB)
        assert bigger.size_bytes == 8 * KB
        assert bigger.block_bytes == 32
        assert bigger.associativity == 2
        wider = geometry.scaled(associativity=4)
        assert wider.associativity == 4
        assert wider.size_bytes == 4 * KB


class TestAddressDecomposition:
    def test_known_values(self):
        geometry = CacheGeometry(size_bytes=1 * KB, block_bytes=16, associativity=1)
        # 64 sets, offset 4 bits, index 6 bits.
        address = 0b1011_101101_0111
        assert geometry.block_address(address) == address >> 4
        assert geometry.set_index(address) == 0b101101
        assert geometry.tag(address) == 0b1011

    def test_rebuild_address_inverts_decomposition(self):
        geometry = CacheGeometry(size_bytes=8 * KB, block_bytes=32, associativity=4)
        for address in (0, 0x1234560, 0xFFFFFFE0, 0xDEADBEE0):
            rebuilt = geometry.rebuild_address(
                geometry.tag(address), geometry.set_index(address)
            )
            assert rebuilt == address & ~(geometry.block_bytes - 1)

    @given(
        address=st.integers(0, 2**48 - 1),
        size_exp=st.integers(10, 22),
        block_exp=st.integers(2, 7),
        assoc_exp=st.integers(0, 3),
    )
    def test_decomposition_roundtrip_property(self, address, size_exp, block_exp, assoc_exp):
        geometry = CacheGeometry(
            size_bytes=2**size_exp,
            block_bytes=2**block_exp,
            associativity=2**assoc_exp,
        )
        tag = geometry.tag(address)
        index = geometry.set_index(address)
        assert 0 <= index < geometry.sets
        rebuilt = geometry.rebuild_address(tag, index)
        assert rebuilt == address >> geometry.offset_bits << geometry.offset_bits
