"""Tests for sequential prefetching."""

import pytest

from repro.cache import Cache, CacheGeometry
from repro.cache.policy import PrefetchKind, PrefetchPolicy


def cache_with(kind, distance=1, sets_kb=4):
    return Cache(
        CacheGeometry(size_bytes=sets_kb * 1024, block_bytes=16, associativity=1),
        prefetch=PrefetchPolicy(kind=kind, distance=distance),
    )


class TestPolicy:
    def test_parse_accepts_strings(self):
        policy = PrefetchPolicy(kind="tagged")
        assert policy.kind is PrefetchKind.TAGGED
        assert policy.enabled

    def test_none_is_disabled(self):
        assert not PrefetchPolicy().enabled

    def test_candidates_are_successors(self):
        policy = PrefetchPolicy(kind="on-miss", distance=3)
        assert list(policy.candidates(10)) == [11, 12, 13]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown prefetch kind"):
            PrefetchPolicy(kind="psychic")

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(kind="on-miss", distance=0)


class TestOnMiss:
    def test_miss_prefetches_next_block(self):
        cache = cache_with("on-miss")
        outcome = cache.read(0x100)
        assert outcome.prefetched == [0x110]
        assert cache.contains(0x110)
        assert cache.stats.prefetches_issued == 1

    def test_hit_does_not_prefetch(self):
        cache = cache_with("on-miss")
        cache.read(0x100)
        outcome = cache.read(0x104)
        assert outcome.hit
        assert outcome.prefetched == []

    def test_distance_brings_several_blocks(self):
        cache = cache_with("on-miss", distance=3)
        outcome = cache.read(0x100)
        assert outcome.prefetched == [0x110, 0x120, 0x130]

    def test_resident_successor_not_refetched(self):
        cache = cache_with("on-miss")
        cache.read(0x110)  # brings 0x110 (and prefetches 0x120)
        outcome = cache.read(0x100)  # 0x110 already resident
        assert outcome.prefetched == []

    def test_demand_hit_on_prefetched_block_counts_useful(self):
        cache = cache_with("on-miss")
        cache.read(0x100)      # prefetches 0x110
        outcome = cache.read(0x110)
        assert outcome.hit
        assert cache.stats.useful_prefetches == 1
        assert cache.stats.prefetch_accuracy == 1.0

    def test_useful_counted_once(self):
        cache = cache_with("on-miss")
        cache.read(0x100)
        cache.read(0x110)
        cache.read(0x110)
        assert cache.stats.useful_prefetches == 1


class TestTagged:
    def test_first_touch_of_prefetched_block_triggers_more(self):
        cache = cache_with("tagged")
        cache.read(0x100)          # miss: prefetches 0x110
        outcome = cache.read(0x110)  # first touch: prefetches 0x120
        assert outcome.hit
        assert outcome.prefetched == [0x120]

    def test_second_touch_does_not_retrigger(self):
        cache = cache_with("tagged")
        cache.read(0x100)
        cache.read(0x110)
        outcome = cache.read(0x114)  # same block, already consumed
        assert outcome.prefetched == []

    def test_demand_fetched_block_does_not_trigger_on_hit(self):
        cache = cache_with("tagged")
        cache.read(0x100)          # demand miss (prefetches 0x110)
        outcome = cache.read(0x104)  # hit on the demand-fetched block
        assert outcome.prefetched == []


class TestAlways:
    def test_every_demand_read_prefetches(self):
        cache = cache_with("always")
        cache.read(0x100)
        outcome = cache.read(0x104)  # hit, still prefetches
        assert outcome.hit
        # 0x110 already prefetched by the miss, so nothing new here...
        assert outcome.prefetched == []
        outcome = cache.read(0x200)
        assert 0x210 in outcome.prefetched


class TestIsolation:
    def test_writes_do_not_trigger_prefetch(self):
        cache = cache_with("always")
        outcome = cache.write(0x300)
        assert outcome.prefetched == []

    def test_prefetch_bucket_reads_do_not_retrigger(self):
        cache = cache_with("always")
        outcome = cache.read(0x400, bucket="prefetch")
        assert outcome.prefetched == []
        assert cache.stats.prefetch_reads == 1
        assert cache.stats.prefetch_read_misses == 1
        assert cache.stats.reads == 0

    def test_unknown_bucket_rejected(self):
        cache = cache_with("none")
        with pytest.raises(ValueError, match="unknown access bucket"):
            cache.read(0x0, bucket="speculative")

    def test_prefetch_eviction_writes_back_dirty_victims(self):
        # One-set cache: a prefetch can evict a dirty block.
        cache = Cache(
            CacheGeometry(32, 16, 2),
            prefetch=PrefetchPolicy(kind="on-miss"),
        )
        cache.write(0x00)          # dirty block 0 (prefetches 0x10: set full)
        outcome = cache.read(0x40)  # miss: fill 0x40 evicts, prefetch 0x50 evicts
        evicted = outcome.writebacks
        assert 0x00 in evicted


class TestHierarchyPropagation:
    def test_l2_prefetches_fetch_from_memory(self):
        from repro.sim.config import LevelConfig, SystemConfig
        from repro.sim.hierarchy import CacheHierarchy
        from repro.trace.record import READ

        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=1024, block_bytes=16),
                LevelConfig(size_bytes=64 * 1024, block_bytes=32,
                            prefetch="on-miss"),
            )
        )
        hierarchy = CacheHierarchy(config)
        hierarchy.access(READ, 0x1000)
        l2 = hierarchy.lower[0]
        assert l2.stats.prefetches_issued == 1
        # Demand block + prefetched block both came from memory.
        assert hierarchy.memory_traffic.reads == 2
        # Demand miss ratios see only the demand read.
        assert l2.stats.reads == 1

    def test_l1_prefetch_read_counts_in_l2_prefetch_bucket(self):
        from repro.sim.config import LevelConfig, SystemConfig
        from repro.sim.hierarchy import CacheHierarchy
        from repro.trace.record import READ

        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=1024, block_bytes=16, prefetch="on-miss"),
                LevelConfig(size_bytes=64 * 1024, block_bytes=32),
            )
        )
        hierarchy = CacheHierarchy(config)
        hierarchy.access(READ, 0x1000)
        l2 = hierarchy.lower[0]
        assert l2.stats.prefetch_reads == 1
        assert l2.stats.reads == 1  # the demand fetch
