"""Tests for cache statistics."""

import pytest

from repro.cache.stats import CacheStats


class TestRatios:
    def test_read_miss_ratio(self):
        stats = CacheStats(reads=100, read_misses=15)
        assert stats.read_miss_ratio == pytest.approx(0.15)

    def test_write_miss_ratio(self):
        stats = CacheStats(writes=50, write_misses=5)
        assert stats.write_miss_ratio == pytest.approx(0.1)

    def test_zero_accesses_give_zero_ratio(self):
        stats = CacheStats()
        assert stats.read_miss_ratio == 0.0
        assert stats.write_miss_ratio == 0.0

    def test_aggregates(self):
        stats = CacheStats(reads=10, writes=5, read_misses=2, write_misses=1)
        assert stats.accesses == 15
        assert stats.misses == 3


class TestMergeAndReset:
    def test_merge_sums_every_counter(self):
        a = CacheStats(
            reads=1, read_misses=2, writes=3, write_misses=4,
            writebacks=5, blocks_fetched=6, prefetched_blocks=7,
            writes_forwarded=8,
        )
        b = CacheStats(
            reads=10, read_misses=20, writes=30, write_misses=40,
            writebacks=50, blocks_fetched=60, prefetched_blocks=70,
            writes_forwarded=80,
        )
        merged = a.merge(b)
        assert merged == CacheStats(
            reads=11, read_misses=22, writes=33, write_misses=44,
            writebacks=55, blocks_fetched=66, prefetched_blocks=77,
            writes_forwarded=88,
        )

    def test_merge_leaves_operands_unchanged(self):
        a = CacheStats(reads=1)
        b = CacheStats(reads=2)
        a.merge(b)
        assert a.reads == 1
        assert b.reads == 2

    def test_reset_zeroes_everything(self):
        stats = CacheStats(
            reads=1, read_misses=1, writes=1, write_misses=1,
            writebacks=1, blocks_fetched=1, prefetched_blocks=1,
            writes_forwarded=1,
        )
        stats.reset()
        assert stats == CacheStats()
