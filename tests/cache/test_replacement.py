"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    make_replacement,
)


def entries_of(*tags):
    return [[tag, False] for tag in tags]


class TestLRU:
    def test_hit_moves_to_front(self):
        policy = LRUReplacement()
        entries = entries_of(1, 2, 3)
        policy.on_hit(entries, 2)
        assert [e[0] for e in entries] == [3, 1, 2]

    def test_hit_on_front_is_noop(self):
        policy = LRUReplacement()
        entries = entries_of(1, 2)
        policy.on_hit(entries, 0)
        assert [e[0] for e in entries] == [1, 2]

    def test_insert_at_front(self):
        policy = LRUReplacement()
        entries = entries_of(1)
        policy.on_insert(entries, [9, False])
        assert [e[0] for e in entries] == [9, 1]

    def test_victim_is_least_recent(self):
        policy = LRUReplacement()
        entries = entries_of(3, 2, 1)
        assert policy.select_victim(entries) == 2


class TestFIFO:
    def test_hit_does_not_reorder(self):
        policy = FIFOReplacement()
        entries = entries_of(1, 2, 3)
        policy.on_hit(entries, 2)
        assert [e[0] for e in entries] == [1, 2, 3]

    def test_victim_is_oldest(self):
        policy = FIFOReplacement()
        entries = entries_of(3, 2, 1)  # 1 inserted first
        assert policy.select_victim(entries) == 2


class TestRandom:
    def test_victim_in_range_and_deterministic(self):
        entries = entries_of(1, 2, 3, 4)
        a = [RandomReplacement(seed=42).select_victim(entries) for _ in range(10)]
        b = [RandomReplacement(seed=42).select_victim(entries) for _ in range(10)]
        assert a == b
        assert all(0 <= v < 4 for v in a)

    def test_victims_spread_across_ways(self):
        policy = RandomReplacement(seed=1)
        entries = entries_of(1, 2, 3, 4)
        victims = {policy.select_victim(entries) for _ in range(100)}
        assert len(victims) == 4


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUReplacement), ("FIFO", FIFOReplacement), ("random", RandomReplacement)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_replacement(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_replacement("plru")

    def test_kwargs_forwarded(self):
        policy = make_replacement("random", seed=7)
        assert isinstance(policy, RandomReplacement)
