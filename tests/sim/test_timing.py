"""Known-answer and property tests for the timing simulator.

The scenarios encode the paper's base-machine latencies (section 2):
10 ns CPU cycle, 3-CPU-cycle nominal L1 miss penalty on an L2 hit, and a
270 ns nominal L2 miss penalty (address cycle + 180 ns DRAM read + two
backplane data cycles), with the DRAM recovery window adding up to 120 ns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.timing import TimingSimulator, simulate_execution_time
from repro.trace.record import IFETCH, READ, WRITE, Trace
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def base_machine(l2_cycle=3.0, l2_kb=512):
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True,
                        cycle_cpu_cycles=1, write_hit_cycles=2),
            LevelConfig(size_bytes=l2_kb * KB, block_bytes=32,
                        cycle_cpu_cycles=l2_cycle, write_hit_cycles=2),
        )
    )


def run(records, config=None, warmup=0):
    trace = Trace.from_records(records, warmup=warmup)
    return simulate_execution_time(trace, config or base_machine())


# L1I halves are 2 KB: addresses 2 KB apart conflict in L1 but not in L2.
L1_CONFLICT = 2 * KB


class TestHitTiming:
    def test_all_hit_stream_runs_at_one_cycle_per_instruction(self):
        records = [(IFETCH, 0x0)] * 10
        result = run(records, warmup=1)
        # 9 measured instructions at 10 ns.
        assert result.total_ns == pytest.approx(90.0)
        assert result.cycles_per_instruction == pytest.approx(1.0)

    def test_data_read_hit_shares_the_cycle(self):
        records = [(IFETCH, 0x0), (READ, 0x5000)] * 5
        result = run(records, warmup=2)
        assert result.total_ns == pytest.approx(40.0)  # 4 measured ifetches


class TestMissPenalties:
    def test_cold_l2_miss_costs_nominal_270ns(self):
        result = run([(IFETCH, 0x0)])
        assert result.total_ns == pytest.approx(10.0 + 270.0)

    def test_l1_miss_l2_hit_costs_one_l2_cycle(self):
        warm = [(IFETCH, 0x0), (IFETCH, L1_CONFLICT)]
        result = run(warm + [(IFETCH, 0x0)], warmup=2)
        assert result.total_ns == pytest.approx(10.0 + 30.0)

    def test_l2_cycle_time_scales_the_penalty(self):
        warm = [(IFETCH, 0x0), (IFETCH, L1_CONFLICT)]
        result = run(warm + [(IFETCH, 0x0)], config=base_machine(l2_cycle=5.0), warmup=2)
        assert result.total_ns == pytest.approx(10.0 + 50.0)

    def test_back_to_back_l2_misses_pay_dram_recovery(self):
        result = run([(IFETCH, 0x0), (IFETCH, 0x4000)])
        # First miss: 10 + 270.  Second: base cycle at 290; the DRAM read
        # cannot start before 220 (first data op end) + 120 recovery = 340,
        # so data is at the pins at 520 and the block arrives at 580.
        assert result.total_ns == pytest.approx(580.0)

    def test_read_stall_accounting_matches_total(self):
        result = run([(IFETCH, 0x0), (IFETCH, 0x4000)])
        base = 2 * 10.0
        assert result.total_ns == pytest.approx(base + result.read_stall_ns)


class TestWriteTiming:
    def test_write_hit_does_not_stall_the_writer(self):
        warm = [(READ, 0x5000)]
        run(warm + [(IFETCH, 0x0), (WRITE, 0x5000)], warmup=3)
        # Only the measured ifetch advances time (warmup covers everything
        # else); actually warmup=3 leaves nothing measured -- use explicit:
        run([(IFETCH, 0x0), (WRITE, 0x5000)], warmup=0)

    def test_write_occupies_dcache_for_two_cycles(self):
        # warm L1I with 0x0 and L1D with 0x5000/0x5010.
        warm = [(IFETCH, 0x0), (READ, 0x5000), (READ, 0x5010)]
        records = warm + [
            (IFETCH, 0x0), (WRITE, 0x5000),   # write hit, D-cache busy 2 cycles
            (IFETCH, 0x0), (READ, 0x5010),    # read arrives 1 cycle later: +1 stall
        ]
        result = run(records, warmup=len(warm))
        assert result.total_ns == pytest.approx(2 * 10.0 + 10.0)
        assert result.write_stall_ns == pytest.approx(10.0)

    def test_independent_cycles_hide_write_occupancy(self):
        warm = [(IFETCH, 0x0), (READ, 0x5000), (READ, 0x5010)]
        records = warm + [
            (IFETCH, 0x0), (WRITE, 0x5000),
            (IFETCH, 0x0),                    # no data access this cycle
            (IFETCH, 0x0), (READ, 0x5010),    # D-cache free again
        ]
        result = run(records, warmup=len(warm))
        assert result.total_ns == pytest.approx(3 * 10.0)
        assert result.write_stall_ns == pytest.approx(0.0)

    def test_write_miss_stalls_for_allocation(self):
        result = run([(WRITE, 0x5000)])
        # Fetch-on-write from memory: the cold L2 miss path.
        assert result.write_stall_ns == pytest.approx(270.0)


class TestWriteBufferEffects:
    def test_dirty_evictions_can_fill_the_buffer(self):
        # Tiny L1 (64 B direct-mapped, 4 sets); pound one set with writes so
        # every write evicts a dirty victim into the L1->L2 buffer.
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=64, block_bytes=16, cycle_cpu_cycles=1),
                LevelConfig(size_bytes=64 * KB, block_bytes=32, cycle_cpu_cycles=3),
            )
        )
        records = []
        for i in range(64):
            records.append((IFETCH, 0x10000))  # harmless hit after first
            records.append((WRITE, (i % 16) * 64))
        result = simulate_execution_time(Trace.from_records(records), config)
        assert result.buffer_full_stalls[0] > 0

    def test_read_matching_buffered_write_waits(self):
        # Dirty block evicted to the buffer, then immediately re-read: the
        # read must fence on the buffered entry.
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=64, block_bytes=16, cycle_cpu_cycles=1),
                LevelConfig(size_bytes=64 * KB, block_bytes=32, cycle_cpu_cycles=3),
            )
        )
        records = [
            (WRITE, 0x0),      # dirty
            (READ, 0x100),     # evicts dirty 0x0 into the buffer
            (READ, 0x0),       # must fence on the buffered writeback
        ]
        result = simulate_execution_time(Trace.from_records(records), config)
        assert result.buffer_read_matches[0] >= 1


class TestSingleLevelSystems:
    def test_slow_unified_cache_sets_the_pace(self):
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=64 * KB, block_bytes=32, cycle_cpu_cycles=3),
            )
        )
        records = [(IFETCH, 0x0)] * 4
        result = simulate_execution_time(
            Trace.from_records(records, warmup=1), config
        )
        # Every fetch takes a full 30 ns cache cycle.
        assert result.total_ns == pytest.approx(3 * 30.0)

    def test_single_level_miss_goes_straight_to_memory(self):
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=64 * KB, block_bytes=32, cycle_cpu_cycles=3),
            )
        )
        result = simulate_execution_time(
            Trace.from_records([(IFETCH, 0x0)]), config
        )
        # 30 ns fetch cycle + 270 ns memory path.
        assert result.total_ns == pytest.approx(30.0 + 270.0)


class TestResultDerivations:
    def test_relative_to(self):
        fast = run([(IFETCH, 0x0)] * 10, warmup=1)
        slow = run([(IFETCH, 0x0), (IFETCH, 0x4000)] * 5, warmup=0)
        assert slow.relative_to(fast) == pytest.approx(slow.total_ns / fast.total_ns)

    def test_relative_to_zero_reference_rejected(self):
        empty = run([], warmup=0)
        other = run([(IFETCH, 0x0)])
        with pytest.raises(ValueError):
            other.relative_to(empty)

    def test_total_cycles_conversion(self):
        result = run([(IFETCH, 0x0)])
        assert result.total_cycles == pytest.approx(result.total_ns / 10.0)

    def test_miss_ratios_match_functional_simulation(self):
        from repro.sim.functional import simulate_miss_ratios

        trace = SyntheticWorkload(seed=9).trace(20_000, warmup=2_000)
        config = base_machine(l2_kb=64)
        timing = TimingSimulator(config).run(trace)
        functional = simulate_miss_ratios(trace, config)
        assert timing.global_read_miss_ratio(1) == pytest.approx(
            functional.global_read_miss_ratio(1)
        )
        # L2 state can differ slightly because the timing engine applies
        # buffered writebacks immediately; read misses still dominate.
        assert timing.global_read_miss_ratio(2) == pytest.approx(
            functional.global_read_miss_ratio(2), rel=0.05, abs=1e-4
        )

    def test_longer_trace_takes_longer(self):
        workload = SyntheticWorkload(seed=10)
        short = TimingSimulator(base_machine()).run(workload.trace(5_000))
        long = TimingSimulator(base_machine()).run(
            SyntheticWorkload(seed=10).trace(20_000)
        )
        assert long.total_ns > short.total_ns


class TestThreeLevelTiming:
    def three_level(self):
        return SystemConfig(
            levels=(
                LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True,
                            cycle_cpu_cycles=1, write_hit_cycles=2),
                LevelConfig(size_bytes=16 * KB, block_bytes=32,
                            cycle_cpu_cycles=3, write_hit_cycles=2),
                LevelConfig(size_bytes=256 * KB, block_bytes=32,
                            cycle_cpu_cycles=6, write_hit_cycles=2),
            ),
            backplane_cycle_ns=30.0,
        )

    def test_l2_miss_l3_hit_costs_one_l3_cycle(self):
        # Warm L3 with 0x0 and 0x8000 (conflicting in L1 and L2 but not L3),
        # then re-read 0x0: L1 miss, L2 miss, L3 hit.
        # L1 halves are 2KB (conflict at 0x800 multiples); L2 is 16KB
        # (conflict at 0x4000 multiples); L3 256KB holds both.
        warm = [(IFETCH, 0x0), (IFETCH, 0x4000)]
        trace = Trace.from_records(warm + [(IFETCH, 0x0)], warmup=2)
        result = simulate_execution_time(trace, self.three_level())
        # Base cycle 10 + one L3 cycle (60 ns).
        assert result.total_ns == pytest.approx(10.0 + 60.0)

    def test_l3_miss_goes_to_memory_at_nominal_cost(self):
        trace = Trace.from_records([(IFETCH, 0x0)])
        result = simulate_execution_time(trace, self.three_level())
        # Cold miss everywhere: base 10 + pinned-backplane memory path 270.
        assert result.total_ns == pytest.approx(10.0 + 270.0)

    def test_l2_hit_unchanged_by_l3(self):
        warm = [(IFETCH, 0x0), (IFETCH, 0x800)]  # L1I conflict, both in L2
        trace = Trace.from_records(warm + [(IFETCH, 0x0)], warmup=2)
        result = simulate_execution_time(trace, self.three_level())
        assert result.total_ns == pytest.approx(10.0 + 30.0)


@st.composite
def timing_trace(draw):
    n = draw(st.integers(10, 200))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    addresses = (rng.integers(0, 256, size=n) * 16).astype(np.uint64)
    kinds = rng.choice([IFETCH, READ, WRITE], size=n, p=[0.6, 0.25, 0.15])
    return Trace(kinds.astype(np.uint8), addresses)


class TestTimingProperties:
    @settings(max_examples=30, deadline=None)
    @given(trace=timing_trace())
    def test_stall_decomposition_is_exact(self, trace):
        """With a split L1 at the CPU rate, total time is exactly the base
        instruction cycles plus read and write stalls."""
        result = simulate_execution_time(trace, base_machine(l2_kb=16))
        base = result.instructions * 10.0
        assert result.total_ns == pytest.approx(
            base + result.read_stall_ns + result.write_stall_ns
        )

    @settings(max_examples=30, deadline=None)
    @given(trace=timing_trace())
    def test_time_never_below_base_cycles(self, trace):
        result = simulate_execution_time(trace, base_machine(l2_kb=16))
        assert result.total_ns >= result.instructions * 10.0 - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(trace=timing_trace())
    def test_deterministic(self, trace):
        config = base_machine(l2_kb=16)
        first = simulate_execution_time(trace, config)
        second = simulate_execution_time(trace, config)
        assert first.total_ns == second.total_ns

    @settings(max_examples=20, deadline=None)
    @given(trace=timing_trace())
    def test_faster_l2_never_slower(self, trace):
        fast = simulate_execution_time(trace, base_machine(l2_cycle=1.0, l2_kb=16))
        slow = simulate_execution_time(trace, base_machine(l2_cycle=8.0, l2_kb=16))
        assert fast.total_ns <= slow.total_ns + 1e-9


class TestEndOfTraceDrain:
    """Regression: pending write-buffer entries at end of trace used to be
    dropped from the measured time entirely."""

    def test_pending_writeback_drain_is_charged(self):
        # Warmup dirties a D-cache block without accruing time; the one
        # measured read evicts it, pushing a writeback that is still
        # draining when the trace ends.  The drain (one L2 write service:
        # 2 cycles x 30 ns) must appear in the total, booked as write
        # stall.  Pre-fix, write_stall_ns was 0 here.
        records = [(WRITE, 0x5000), (READ, 0x5000 + L1_CONFLICT)]
        result = run(records, warmup=1)
        assert result.write_stall_ns == pytest.approx(60.0)
        assert result.total_ns == pytest.approx(
            result.base_ns + result.read_stall_ns + result.write_stall_ns
        )

    def test_clean_trace_has_no_drain_tail(self):
        records = [(IFETCH, 0x0)] * 10
        result = run(records, warmup=1)
        assert result.write_stall_ns == 0.0
        assert result.total_ns == pytest.approx(90.0)

    def test_base_time_is_reported(self):
        records = [(IFETCH, 0x0), (READ, 0x5000)] * 5
        result = run(records, warmup=2)
        # Split L1 at CPU speed: base time is the 4 measured ifetches.
        assert result.base_ns == pytest.approx(40.0)
        assert result.total_ns == pytest.approx(
            result.base_ns + result.read_stall_ns + result.write_stall_ns
        )


class TestLevelBounds:
    def test_level_zero_rejected(self):
        result = run([(IFETCH, 0x0)])
        # Regression: level=0 used to fall through Python's negative
        # indexing and silently report the *deepest* level.
        with pytest.raises(ValueError, match="1..2"):
            result.global_read_miss_ratio(0)

    def test_level_past_depth_rejected(self):
        result = run([(IFETCH, 0x0)])
        with pytest.raises(ValueError, match="1..2"):
            result.global_read_miss_ratio(3)

    def test_valid_levels_accepted(self):
        result = run([(IFETCH, 0x0)])
        assert result.global_read_miss_ratio(1) == 1.0
        assert result.global_read_miss_ratio(2) == 1.0
