"""Differential parity for chunked streaming replay.

The contract: with ``REPRO_TRACE_CHUNK`` set, the fast path and the
stack-distance grid stream the trace through persistent cache state in
fixed-size chunks -- and every count comes out *identical* to whole-array
replay (and therefore to the reference simulator, whose equivalence is
pinned by ``test_fast.py`` / ``test_stackdist.py``).  These tests are
what lets memmap-backed store traces run without materialising in full.
"""

import pytest

from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.fast import (
    FastFunctionalSimulator,
    run_functional,
    run_functional_chunked,
)
from repro.sim.functional import FunctionalSimulator
from repro.sim.stackdist import (
    STACK_ASSOCIATIVITIES,
    clear_front_cache,
    run_stackdist_grid,
)
from repro.trace.store import TraceStore
from repro.trace.workload import SyntheticWorkload
from repro.units import KB

COUNT_FIELDS = (
    "reads", "read_misses", "writes", "write_misses",
    "writebacks", "blocks_fetched",
)

#: Deliberately awkward chunk sizes: not divisors of the trace length,
#: odd, and one that leaves a single-record tail.
CHUNK_SIZES = (999, 7777, 24_999)


@pytest.fixture(autouse=True)
def fresh_front_cache():
    clear_front_cache()
    yield
    clear_front_cache()


def two_level(split=True, l1_ways=1, l2_ways=1):
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=split,
                        associativity=l1_ways),
            LevelConfig(size_bytes=32 * KB, block_bytes=32,
                        cycle_cpu_cycles=3, associativity=l2_ways),
        )
    )


def three_level():
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=2 * KB, block_bytes=16, split=True),
            LevelConfig(size_bytes=8 * KB, block_bytes=32, cycle_cpu_cycles=3),
            LevelConfig(size_bytes=64 * KB, block_bytes=64, cycle_cpu_cycles=6),
        )
    )


def assert_counts_equal(got, want, context=""):
    assert got.cpu_reads == want.cpu_reads, context
    assert got.cpu_writes == want.cpu_writes, context
    assert got.cpu_ifetches == want.cpu_ifetches, context
    for level, (g, w) in enumerate(
        zip(got.level_stats, want.level_stats), start=1
    ):
        for field in COUNT_FIELDS:
            assert getattr(g, field) == getattr(w, field), (
                f"{context} level {level} {field}: chunked={getattr(g, field)} "
                f"whole={getattr(w, field)}"
            )
    assert got.memory_reads == want.memory_reads, context
    assert got.memory_writes == want.memory_writes, context


class TestFastChunkedParity:
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_split_two_level(self, chunk):
        trace = SyntheticWorkload(seed=41).trace(25_000, warmup=5_000)
        whole = FastFunctionalSimulator(two_level()).run(trace)
        chunked = run_functional_chunked(trace, two_level(), chunk)
        assert_counts_equal(chunked, whole, f"chunk={chunk}")

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_unified_set_associative(self, chunk):
        trace = SyntheticWorkload(seed=42).trace(25_000)
        config = two_level(split=False, l1_ways=4, l2_ways=8)
        whole = FastFunctionalSimulator(config).run(trace)
        chunked = run_functional_chunked(trace, config, chunk)
        assert_counts_equal(chunked, whole, f"chunk={chunk}")

    def test_three_levels(self):
        trace = SyntheticWorkload(seed=43).trace(25_000, warmup=4_000)
        whole = FastFunctionalSimulator(three_level()).run(trace)
        for chunk in CHUNK_SIZES:
            chunked = run_functional_chunked(trace, three_level(), chunk)
            assert_counts_equal(chunked, whole, f"chunk={chunk}")

    def test_single_level(self):
        trace = SyntheticWorkload(seed=44).trace(15_000)
        config = SystemConfig(
            levels=(LevelConfig(size_bytes=2 * KB, block_bytes=16),)
        )
        whole = FastFunctionalSimulator(config).run(trace)
        chunked = run_functional_chunked(trace, config, 999)
        assert_counts_equal(chunked, whole)

    def test_chunk_larger_than_trace(self):
        trace = SyntheticWorkload(seed=45).trace(5_000)
        whole = FastFunctionalSimulator(two_level()).run(trace)
        chunked = run_functional_chunked(trace, two_level(), 1_000_000)
        assert_counts_equal(chunked, whole)

    def test_matches_reference_simulator(self):
        trace = SyntheticWorkload(seed=46).trace(12_000, warmup=2_000)
        reference = FunctionalSimulator(two_level()).run(trace)
        chunked = run_functional_chunked(trace, two_level(), 999)
        assert_counts_equal(chunked, reference)


class TestStackdistChunkedParity:
    def grids(self, trace, config, chunk, monkeypatch):
        whole = run_stackdist_grid(trace, config)
        clear_front_cache()
        monkeypatch.setenv("REPRO_TRACE_CHUNK", str(chunk))
        chunked = run_stackdist_grid(trace, config)
        monkeypatch.delenv("REPRO_TRACE_CHUNK")
        return whole, chunked

    @pytest.mark.parametrize("chunk", (999, 7777))
    def test_depth_one_split(self, chunk, monkeypatch):
        trace = SyntheticWorkload(seed=47).trace(20_000, warmup=4_000)
        config = SystemConfig(
            levels=(LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True),)
        )
        whole, chunked = self.grids(trace, config, chunk, monkeypatch)
        for ways in STACK_ASSOCIATIVITIES:
            assert_counts_equal(
                chunked.result_for(ways), whole.result_for(ways),
                f"ways={ways} chunk={chunk}",
            )

    @pytest.mark.parametrize("chunk", (999, 7777))
    def test_two_level_grid(self, chunk, monkeypatch):
        trace = SyntheticWorkload(seed=48).trace(20_000, warmup=4_000)
        whole, chunked = self.grids(trace, two_level(), chunk, monkeypatch)
        for ways in STACK_ASSOCIATIVITIES:
            assert_counts_equal(
                chunked.result_for(ways), whole.result_for(ways),
                f"ways={ways} chunk={chunk}",
            )

    def test_three_level_grid(self, monkeypatch):
        trace = SyntheticWorkload(seed=49).trace(20_000)
        whole, chunked = self.grids(trace, three_level(), 7777, monkeypatch)
        for ways in STACK_ASSOCIATIVITIES:
            assert_counts_equal(
                chunked.result_for(ways), whole.result_for(ways), f"ways={ways}"
            )


class TestEnvDispatch:
    def test_run_functional_honours_the_chunk_knob(self, monkeypatch):
        trace = SyntheticWorkload(seed=50).trace(10_000)
        monkeypatch.delenv("REPRO_TRACE_CHUNK", raising=False)
        whole = run_functional(trace, two_level())
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "999")
        chunked = run_functional(trace, two_level())
        assert_counts_equal(chunked, whole)

    def test_chunk_zero_means_off(self, monkeypatch):
        from repro.trace.store import replay_chunk_records

        monkeypatch.setenv("REPRO_TRACE_CHUNK", "0")
        assert replay_chunk_records() is None
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "4096")
        assert replay_chunk_records() == 4096


class TestStoreTraceReplay:
    """Memmap-backed store traces run the chunked path end to end."""

    def test_store_trace_counts_match_heap_trace(self, tmp_path, monkeypatch):
        trace = SyntheticWorkload(seed=51).trace(20_000, warmup=3_000)
        whole = run_functional(trace, two_level())
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "4096")
        chunked = run_functional(loaded, two_level())
        assert_counts_equal(chunked, whole)

    def test_store_trace_grid_matches_heap_trace(self, tmp_path, monkeypatch):
        trace = SyntheticWorkload(seed=52).trace(15_000, warmup=2_000)
        whole = run_stackdist_grid(trace, two_level())
        TraceStore.save(trace, tmp_path / "t.mlt")
        loaded = TraceStore.open(tmp_path / "t.mlt").as_trace()
        clear_front_cache()
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "4096")
        chunked = run_stackdist_grid(loaded, two_level())
        for ways in STACK_ASSOCIATIVITIES:
            assert_counts_equal(
                chunked.result_for(ways), whole.result_for(ways), f"ways={ways}"
            )
