"""Cross-validation of the vectorised simulator against the reference.

The fast path must produce *identical* counts -- these tests are the
correctness contract that lets experiments dispatch to it blindly.
"""

import pytest

from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.fast import FastFunctionalSimulator, fast_eligible, run_functional
from repro.sim.functional import FunctionalSimulator
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def two_level(split=True, l1_kb=4, l2_kb=32, l1_ways=1, l2_ways=1):
    return SystemConfig(
        levels=(
            LevelConfig(
                size_bytes=l1_kb * KB,
                block_bytes=16,
                split=split,
                associativity=l1_ways,
            ),
            LevelConfig(
                size_bytes=l2_kb * KB,
                block_bytes=32,
                cycle_cpu_cycles=3,
                associativity=l2_ways,
            ),
        )
    )


def assert_same_counts(trace, config):
    fast = FastFunctionalSimulator(config).run(trace)
    reference = FunctionalSimulator(config).run(trace)
    assert fast.cpu_reads == reference.cpu_reads
    assert fast.cpu_writes == reference.cpu_writes
    assert fast.cpu_ifetches == reference.cpu_ifetches
    for level, (f, r) in enumerate(
        zip(fast.level_stats, reference.level_stats), start=1
    ):
        for field in ("reads", "read_misses", "writes", "write_misses",
                      "writebacks", "blocks_fetched"):
            assert getattr(f, field) == getattr(r, field), (
                f"level {level} {field}: fast={getattr(f, field)} "
                f"reference={getattr(r, field)}"
            )
    assert fast.memory_reads == reference.memory_reads
    assert fast.memory_writes == reference.memory_writes


class TestExactEquivalence:
    def test_split_two_level(self):
        trace = SyntheticWorkload(seed=31).trace(25_000)
        assert_same_counts(trace, two_level())

    def test_unified_two_level(self):
        trace = SyntheticWorkload(seed=32).trace(25_000)
        assert_same_counts(trace, two_level(split=False))

    def test_with_warmup(self):
        trace = SyntheticWorkload(seed=33).trace(25_000, warmup=8_000)
        assert_same_counts(trace, two_level())

    def test_single_level(self):
        trace = SyntheticWorkload(seed=34).trace(15_000)
        config = SystemConfig(
            levels=(LevelConfig(size_bytes=2 * KB, block_bytes=16),)
        )
        assert_same_counts(trace, config)

    def test_three_levels(self):
        trace = SyntheticWorkload(seed=35).trace(25_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=2 * KB, block_bytes=16, split=True),
                LevelConfig(size_bytes=8 * KB, block_bytes=32, cycle_cpu_cycles=3),
                LevelConfig(size_bytes=64 * KB, block_bytes=64, cycle_cpu_cycles=6),
            )
        )
        assert_same_counts(trace, config)

    def test_tiny_pathological_caches(self):
        trace = SyntheticWorkload(seed=36).trace(8_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=64, block_bytes=16),
                LevelConfig(size_bytes=128, block_bytes=32),
            )
        )
        assert_same_counts(trace, config)

    def test_equal_block_sizes_across_levels(self):
        trace = SyntheticWorkload(seed=37).trace(10_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=1 * KB, block_bytes=32),
                LevelConfig(size_bytes=16 * KB, block_bytes=32),
            )
        )
        assert_same_counts(trace, config)

    def test_multiprogram_trace(self):
        from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec

        processes = [
            ProcessSpec(
                name=f"p{i}",
                workload=SyntheticWorkload(seed=40 + i, address_base=i << 44),
            )
            for i in range(1, 3)
        ]
        trace = MultiprogramScheduler(processes, switch_interval=2_000, seed=3).trace(
            30_000, warmup=5_000
        )
        assert_same_counts(trace, two_level())


class TestAssociativeEquivalence:
    """The issue's differential contract: associativity 1/2/4/8 x
    split/unified L1 x two trace seeds, counts identical to the reference
    ``FunctionalSimulator``."""

    @pytest.mark.parametrize("seed", [71, 72])
    @pytest.mark.parametrize("split", [True, False])
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_associativity_sweep(self, ways, split, seed):
        trace = SyntheticWorkload(seed=seed).trace(12_000, warmup=2_000)
        config = two_level(
            split=split,
            l1_kb=2,
            l2_kb=8,
            l1_ways=min(ways, 4),
            l2_ways=ways,
        )
        assert_same_counts(trace, config)

    def test_sixteen_way(self):
        trace = SyntheticWorkload(seed=73).trace(12_000)
        assert_same_counts(trace, two_level(l1_kb=2, l2_kb=8, l2_ways=16))

    def test_fully_associative_edge(self):
        # One set per level: sets == 1 exercises the kernel's degenerate
        # bucketing (every access lands in the same per-set stream).
        trace = SyntheticWorkload(seed=74).trace(10_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=256, block_bytes=16, associativity=16),
                LevelConfig(
                    size_bytes=1024,
                    block_bytes=32,
                    cycle_cpu_cycles=3,
                    associativity=8,
                ),
            )
        )
        assert_same_counts(trace, config)

    def test_associative_three_levels(self):
        trace = SyntheticWorkload(seed=75).trace(20_000)
        config = SystemConfig(
            levels=(
                LevelConfig(
                    size_bytes=2 * KB, block_bytes=16, split=True,
                    associativity=2,
                ),
                LevelConfig(
                    size_bytes=8 * KB, block_bytes=32, cycle_cpu_cycles=3,
                    associativity=4,
                ),
                LevelConfig(
                    size_bytes=32 * KB, block_bytes=64, cycle_cpu_cycles=6,
                    associativity=8,
                ),
            )
        )
        assert_same_counts(trace, config)


class TestEligibility:
    def test_base_machine_is_eligible(self):
        from repro.experiments import base_machine

        assert fast_eligible(base_machine())

    @pytest.mark.parametrize("ways", [1, 2, 4, 8, 16])
    def test_lru_associativity_is_eligible(self, ways):
        assert fast_eligible(two_level(l2_ways=ways))

    @pytest.mark.parametrize(
        "changes",
        [
            {"associativity": 32},
            {"associativity": 2, "replacement": "fifo"},
            {"associativity": 4, "replacement": "random"},
            {"write_policy": "write-through"},
            {"write_allocate": False},
            {"fetch_blocks": 2},
            {"prefetch": "on-miss"},
        ],
    )
    def test_variations_fall_back(self, changes):
        config = two_level().with_level(1, **changes)
        assert not fast_eligible(config)

    def test_inclusion_falls_back(self):
        import dataclasses

        config = dataclasses.replace(two_level(), enforce_inclusion=True)
        assert not fast_eligible(config)

    def test_constructor_rejects_ineligible(self):
        with pytest.raises(ValueError, match="vectorised"):
            FastFunctionalSimulator(two_level().with_level(1, associativity=32))


class TestDispatch:
    def test_run_functional_picks_fast_when_possible(self):
        trace = SyntheticWorkload(seed=50).trace(10_000)
        config = two_level()
        result = run_functional(trace, config)
        reference = FunctionalSimulator(config).run(trace)
        assert result.level_stats[1].read_misses == (
            reference.level_stats[1].read_misses
        )

    def test_run_functional_picks_fast_for_associative(self):
        trace = SyntheticWorkload(seed=51).trace(10_000)
        config = two_level().with_level(1, associativity=4)
        result = run_functional(trace, config)
        reference = FunctionalSimulator(config).run(trace)
        assert result.level_stats[1].read_misses == (
            reference.level_stats[1].read_misses
        )

    def test_run_functional_falls_back_beyond_max_ways(self):
        trace = SyntheticWorkload(seed=52).trace(10_000)
        config = two_level().with_level(1, associativity=32)
        result = run_functional(trace, config)
        assert result.level_stats[1].reads > 0


class TestSpeed:
    def test_fast_path_is_meaningfully_faster(self):
        import time

        trace = SyntheticWorkload(seed=60).trace(120_000)
        config = two_level()
        start = time.perf_counter()
        FastFunctionalSimulator(config).run(trace)
        fast_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        FunctionalSimulator(config).run(trace)
        reference_elapsed = time.perf_counter() - start
        assert fast_elapsed < reference_elapsed / 3


class TestTraceEligibility:
    def test_high_addresses_fall_back_to_reference(self):
        import numpy as np

        from repro.sim.fast import trace_eligible
        from repro.trace.record import READ, Trace

        high = Trace(
            np.array([READ], dtype=np.uint8),
            np.array([2**63 + 16], dtype=np.uint64),
        )
        assert not trace_eligible(high)
        # run_functional must still produce correct counts via the
        # reference engine.
        result = run_functional(high, two_level())
        assert result.level_stats[0].read_misses == 1

    def test_normal_addresses_eligible(self):
        from repro.sim.fast import trace_eligible
        from repro.trace.workload import SyntheticWorkload

        assert trace_eligible(SyntheticWorkload(seed=1).trace(100))

    def test_empty_trace_eligible_and_simulates(self):
        import numpy as np

        from repro.sim.fast import trace_eligible
        from repro.trace.record import Trace

        empty = Trace(np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.uint64))
        assert trace_eligible(empty)
        result = FastFunctionalSimulator(two_level()).run(empty)
        assert result.cpu_reads == 0
        assert result.memory_reads == 0
