"""Tests for functional access propagation through the hierarchy."""


from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.hierarchy import CacheHierarchy
from repro.trace.record import IFETCH, READ, WRITE
from repro.units import KB


def split_two_level(l1_kb=4, l2_kb=64):
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=l1_kb * KB, block_bytes=16, split=True),
            LevelConfig(size_bytes=l2_kb * KB, block_bytes=32, cycle_cpu_cycles=3),
        )
    )


class TestConstruction:
    def test_split_first_level(self):
        hierarchy = CacheHierarchy(split_two_level())
        assert hierarchy.icache is not None
        assert hierarchy.icache.geometry.size_bytes == 2 * KB
        assert hierarchy.dcache.geometry.size_bytes == 2 * KB
        assert len(hierarchy.lower) == 1

    def test_unified_first_level(self):
        config = SystemConfig(levels=(LevelConfig(size_bytes=4 * KB, block_bytes=16),))
        hierarchy = CacheHierarchy(config)
        assert hierarchy.icache is None

    def test_level_caches_grouping(self):
        hierarchy = CacheHierarchy(split_two_level())
        groups = hierarchy.level_caches
        assert len(groups) == 2
        assert len(groups[0]) == 2
        assert groups[1][0].name == "L2"


class TestRouting:
    def test_ifetch_goes_to_icache(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(IFETCH, 0x1000)
        assert hierarchy.icache.stats.reads == 1
        assert hierarchy.dcache.stats.reads == 0

    def test_load_goes_to_dcache(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(READ, 0x1000)
        assert hierarchy.dcache.stats.reads == 1
        assert hierarchy.icache.stats.reads == 0

    def test_unified_l1_takes_everything(self):
        config = SystemConfig(levels=(LevelConfig(size_bytes=4 * KB, block_bytes=16),))
        hierarchy = CacheHierarchy(config)
        hierarchy.access(IFETCH, 0x0)
        hierarchy.access(READ, 0x1000)
        hierarchy.access(WRITE, 0x2000)
        assert hierarchy.dcache.stats.accesses == 3


class TestMissPropagation:
    def test_l1_miss_reaches_l2_then_memory(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(READ, 0x1000)
        l2 = hierarchy.lower[0]
        assert hierarchy.dcache.stats.read_misses == 1
        assert l2.stats.reads == 1
        assert l2.stats.read_misses == 1
        assert hierarchy.memory_traffic.reads == 1

    def test_l2_hit_stops_propagation(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(READ, 0x1000)   # cold: reaches memory
        hierarchy.access(READ, 0x2000)   # evicts nothing relevant in L1? different set
        # Evict 0x1000 from the tiny L1 by touching a conflicting line.
        conflict = 0x1000 + hierarchy.dcache.geometry.size_bytes
        hierarchy.access(READ, conflict)
        before = hierarchy.memory_traffic.reads
        hierarchy.access(READ, 0x1000)   # L1 miss, L2 hit
        assert hierarchy.memory_traffic.reads == before

    def test_l2_sees_l1_block_granularity(self):
        """An L1 miss asks L2 for the 16-byte L1 block (one L2 read)."""
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(READ, 0x1008)
        assert hierarchy.lower[0].stats.reads == 1

    def test_two_l1_blocks_in_same_l2_block(self):
        """Adjacent 16B L1 blocks share a 32B L2 block: second is an L2 hit."""
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(READ, 0x1000)
        hierarchy.access(READ, 0x1010)
        l2 = hierarchy.lower[0]
        assert l2.stats.reads == 2
        assert l2.stats.read_misses == 1


class TestWritePropagation:
    def test_store_counts_in_write_buckets_downstream(self):
        """A store's allocation fetch must not appear in L2 read stats."""
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(WRITE, 0x1000)
        l2 = hierarchy.lower[0]
        assert l2.stats.reads == 0
        assert l2.stats.writes == 1  # the allocation fetch, write bucket
        assert hierarchy.dcache.stats.write_misses == 1

    def test_dirty_l1_victim_written_to_l2(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(WRITE, 0x1000)
        conflict = 0x1000 + hierarchy.dcache.geometry.size_bytes
        hierarchy.access(READ, conflict)  # evicts dirty 0x1000
        l2 = hierarchy.lower[0]
        assert hierarchy.dcache.stats.writebacks == 1
        assert l2.is_dirty(0x1000)

    def test_dirty_l2_victim_reaches_memory(self):
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=64, block_bytes=16),
                LevelConfig(size_bytes=128, block_bytes=32),
            )
        )
        hierarchy = CacheHierarchy(config)
        hierarchy.access(WRITE, 0x0)
        # March far enough to evict block 0 from both tiny caches.
        for i in range(1, 9):
            hierarchy.access(READ, i * 32)
        assert hierarchy.memory_traffic.writes >= 1


class TestInclusionBehaviour:
    def test_hierarchy_is_not_strictly_inclusive(self):
        """Like the paper's machine, nothing enforces inclusion: an L2
        victim may stay resident in L1 (mostly-inclusive behaviour)."""
        hierarchy = CacheHierarchy(split_two_level(l1_kb=4, l2_kb=64))
        hierarchy.access(READ, 0x0)
        assert hierarchy.dcache.contains(0x0)


class TestCountingControl:
    def test_warmup_counting_disabled_everywhere(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.set_counting(False)
        hierarchy.access(READ, 0x1000)
        assert hierarchy.dcache.stats.accesses == 0
        assert hierarchy.lower[0].stats.accesses == 0
        assert hierarchy.memory_traffic.reads == 0

    def test_reset_stats_clears_all_levels(self):
        hierarchy = CacheHierarchy(split_two_level())
        hierarchy.access(READ, 0x1000)
        hierarchy.reset_stats()
        assert hierarchy.lower[0].stats.accesses == 0
        assert hierarchy.memory_traffic.reads == 0
