"""Property-based invariants of the functional hierarchy.

These hold for *any* trace and any (eligible) configuration, so hypothesis
explores random combinations.  Each invariant is a conservation law of the
hierarchy's plumbing:

* the reads arriving at level i+1 are exactly level i's demand read misses;
* every block fetched at the deepest level came from memory;
* a cache's misses never exceed its accesses;
* counts are reproducible (simulation is deterministic).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.fast import fast_eligible, run_functional
from repro.sim.functional import FunctionalSimulator
from repro.trace.record import IFETCH, READ, WRITE, Trace


@st.composite
def random_trace(draw):
    n = draw(st.integers(20, 400))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    # A small footprint keeps hits and misses both plentiful.
    addresses = (rng.integers(0, 64, size=n) * 16).astype(np.uint64)
    kinds = rng.choice(
        [IFETCH, READ, WRITE], size=n, p=[0.6, 0.25, 0.15]
    ).astype(np.uint8)
    warmup = draw(st.integers(0, n // 2))
    return Trace(kinds, addresses, warmup=warmup)


@st.composite
def random_config(draw):
    l1_size = 2 ** draw(st.integers(7, 10))
    l2_size = 2 ** draw(st.integers(9, 13))
    split = draw(st.booleans()) and l1_size >= 64
    l1_assoc = 2 ** draw(st.integers(0, 2))
    l2_assoc = 2 ** draw(st.integers(0, 2))
    return SystemConfig(
        levels=(
            LevelConfig(
                size_bytes=l1_size, block_bytes=16,
                associativity=min(l1_assoc, (l1_size // 2 if split else l1_size) // 16),
                split=split,
            ),
            LevelConfig(
                size_bytes=l2_size, block_bytes=32,
                associativity=min(l2_assoc, l2_size // 32),
                cycle_cpu_cycles=3,
            ),
        )
    )


@settings(max_examples=40, deadline=None)
@given(trace=random_trace(), config=random_config())
def test_l2_read_stream_is_l1_read_miss_stream(trace, config):
    result = FunctionalSimulator(config).run(trace)
    l1, l2 = result.level_stats
    assert l2.reads == l1.read_misses


@settings(max_examples=40, deadline=None)
@given(trace=random_trace(), config=random_config())
def test_memory_reads_equal_deepest_fetches(trace, config):
    result = FunctionalSimulator(config).run(trace)
    assert result.memory_reads == result.level_stats[-1].blocks_fetched


@settings(max_examples=40, deadline=None)
@given(trace=random_trace(), config=random_config())
def test_misses_bounded_by_accesses(trace, config):
    result = FunctionalSimulator(config).run(trace)
    for stats in result.level_stats:
        assert 0 <= stats.read_misses <= stats.reads
        assert 0 <= stats.write_misses <= stats.writes


@settings(max_examples=40, deadline=None)
@given(trace=random_trace(), config=random_config())
def test_global_ratio_never_exceeds_local(trace, config):
    result = FunctionalSimulator(config).run(trace)
    for level in range(1, result.depth + 1):
        assert (
            result.global_read_miss_ratio(level)
            <= result.local_read_miss_ratio(level) + 1e-12
        )


@settings(max_examples=25, deadline=None)
@given(trace=random_trace(), config=random_config())
def test_simulation_is_deterministic(trace, config):
    first = FunctionalSimulator(config).run(trace)
    second = FunctionalSimulator(config).run(trace)
    assert first.level_stats == second.level_stats
    assert first.memory_reads == second.memory_reads


@settings(max_examples=40, deadline=None)
@given(trace=random_trace(), config=random_config())
def test_fast_path_matches_reference_when_eligible(trace, config):
    """The strongest oracle: the vectorised engine agrees exactly."""
    if not fast_eligible(config):
        return
    fast = run_functional(trace, config)
    reference = FunctionalSimulator(config).run(trace)
    assert fast.level_stats == reference.level_stats
    assert fast.memory_reads == reference.memory_reads
    assert fast.memory_writes == reference.memory_writes


@settings(max_examples=25, deadline=None)
@given(trace=random_trace())
def test_bigger_l2_never_misses_more(trace):
    """Direct-mapped caches are not strictly monotone in general, but a
    doubled cache keeping the same block size dominates on this footprint
    (<= 1 KB of distinct blocks, fully contained in the 4 KB L2)."""
    small = SystemConfig(
        levels=(
            LevelConfig(size_bytes=256, block_bytes=16),
            LevelConfig(size_bytes=1024, block_bytes=32),
        )
    )
    # With the whole footprint resident, only cold misses remain.
    big = small.with_level(1, size_bytes=4096)
    misses_small = FunctionalSimulator(small).run(trace).level_stats[1].read_misses
    misses_big = FunctionalSimulator(big).run(trace).level_stats[1].read_misses
    assert misses_big <= misses_small
