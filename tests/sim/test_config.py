"""Tests for the machine description and its text format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policy import WritePolicy
from repro.memory.main_memory import MemoryTiming
from repro.sim.config import (
    CpuConfig,
    LevelConfig,
    SystemConfig,
    parse_config,
    parse_size,
)
from repro.units import KB, MB


def two_level():
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True),
            LevelConfig(size_bytes=512 * KB, block_bytes=32, cycle_cpu_cycles=3),
        )
    )


class TestLevelConfig:
    def test_split_geometry_is_half(self):
        level = LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True)
        assert level.geometry().size_bytes == 2 * KB

    def test_unified_geometry_is_full(self):
        level = LevelConfig(size_bytes=4 * KB, block_bytes=16)
        assert level.geometry().size_bytes == 4 * KB

    def test_with_replaces_fields(self):
        level = LevelConfig(size_bytes=4 * KB, block_bytes=16)
        bigger = level.with_(size_bytes=8 * KB)
        assert bigger.size_bytes == 8 * KB
        assert bigger.block_bytes == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 3 * KB, "block_bytes": 16},
            {"size_bytes": 4 * KB, "block_bytes": 16, "cycle_cpu_cycles": 0},
            {"size_bytes": 4 * KB, "block_bytes": 16, "write_hit_cycles": 0},
            {"size_bytes": 16, "block_bytes": 16, "split": True},
        ],
    )
    def test_invalid_levels_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LevelConfig(**kwargs)


class TestSystemConfig:
    def test_depth(self):
        assert two_level().depth == 2

    def test_level_cycle_ns(self):
        config = two_level()
        assert config.level_cycle_ns(0) == 10.0
        assert config.level_cycle_ns(1) == 30.0

    def test_with_level_sweeps_one_field(self):
        config = two_level().with_level(1, size_bytes=1 * MB)
        assert config.levels[1].size_bytes == 1 * MB
        assert config.levels[0].size_bytes == 4 * KB

    def test_without_level_removes(self):
        solo = two_level().without_level(0)
        assert solo.depth == 1
        assert solo.levels[0].size_bytes == 512 * KB

    def test_with_memory(self):
        slow = two_level().with_memory(MemoryTiming().scaled(2.0))
        assert slow.memory.read_ns == 360.0

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(levels=())

    def test_split_below_first_level_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(
                levels=(
                    LevelConfig(size_bytes=4 * KB, block_bytes=16),
                    LevelConfig(size_bytes=64 * KB, block_bytes=32, split=True),
                )
            )

    def test_invalid_cpu_rejected(self):
        with pytest.raises(ValueError):
            CpuConfig(cycle_ns=0.0)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4KB", 4 * KB),
            ("512kb", 512 * KB),
            ("1MB", 1 * MB),
            ("64", 64),
            ("16B", 16),
            ("2K", 2 * KB),
        ],
    )
    def test_valid_sizes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "KB", "4GB", "4.5KB"])
    def test_invalid_sizes(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


BASE_TEXT = """
# The base machine of section 2.
cpu cycle_ns=10
l1 size=4KB block=16 assoc=1 split=true cycle=1
l2 size=512KB block=32 assoc=1 cycle=3
memory read_ns=180 write_ns=100 recovery_ns=120
bus width_words=4
write_buffer entries=4
"""


class TestParseConfig:
    def test_base_machine_roundtrip(self):
        config = parse_config(BASE_TEXT)
        assert config.depth == 2
        assert config.levels[0].split
        assert config.levels[0].size_bytes == 4 * KB
        assert config.levels[1].cycle_cpu_cycles == 3.0
        assert config.memory.read_ns == 180.0
        assert config.bus_width_words == 4
        assert config.write_buffer_entries == 4

    def test_levels_ordered_by_number_not_file_order(self):
        config = parse_config("l2 size=64KB block=32\nl1 size=4KB block=16\n")
        assert config.levels[0].size_bytes == 4 * KB

    def test_three_levels(self):
        config = parse_config(
            "l1 size=4KB\nl2 size=64KB block=32\nl3 size=1MB block=32 cycle=6\n"
        )
        assert config.depth == 3
        assert config.levels[2].cycle_cpu_cycles == 6.0

    def test_write_policy_parsed(self):
        config = parse_config("l1 size=4KB write=through\n")
        assert config.levels[0].write_policy is WritePolicy.WRITE_THROUGH

    def test_comments_and_blank_lines_ignored(self):
        config = parse_config("\n# hello\nl1 size=8KB  # trailing\n")
        assert config.levels[0].size_bytes == 8 * KB

    def test_missing_levels_rejected(self):
        with pytest.raises(ValueError, match="no cache levels"):
            parse_config("cpu cycle_ns=10\n")

    def test_non_consecutive_levels_rejected(self):
        with pytest.raises(ValueError, match="consecutively"):
            parse_config("l1 size=4KB\nl3 size=1MB\n")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ValueError, match="unknown keyword"):
            parse_config("cache size=4KB\n")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown options"):
            parse_config("l1 size=4KB colour=red\n")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_config("l1 size\n")


class TestFormatConfig:
    def test_base_text_roundtrip(self):
        from repro.sim.config import format_config

        config = parse_config(BASE_TEXT)
        assert parse_config(format_config(config)) == config

    def test_nondefault_options_roundtrip(self):
        from repro.sim.config import format_config

        config = parse_config(
            "l1 size=8KB block=32 assoc=2 cycle=2 replacement=fifo "
            "write=through fetch_blocks=2 write_allocate=false "
            "prefetch=tagged prefetch_distance=3\n"
            "l2 size=1MB block=64 assoc=4 cycle=5\n"
            "memory read_ns=360 write_ns=200 recovery_ns=240\n"
            "bus width_words=8\n"
            "write_buffer entries=2\n"
        )
        assert parse_config(format_config(config)) == config

    def test_format_size_units(self):
        from repro.sim.config import format_size

        assert format_size(4 * KB) == "4KB"
        assert format_size(2 * MB) == "2MB"
        assert format_size(48) == "48B"


@settings(max_examples=50, deadline=None)
@given(
    l1_exp=st.integers(10, 16),
    l2_exp=st.integers(13, 22),
    l1_block_exp=st.integers(4, 6),
    l2_block_exp=st.integers(4, 7),
    assoc_exp=st.integers(0, 3),
    cycle=st.sampled_from([1.0, 2.0, 3.0, 5.0, 10.0]),
    split=st.booleans(),
    prefetch=st.sampled_from(["none", "on-miss", "tagged", "always"]),
)
def test_random_config_roundtrips(
    l1_exp, l2_exp, l1_block_exp, l2_block_exp, assoc_exp, cycle, split, prefetch
):
    """Any constructible two-level machine must survive serialisation."""
    from repro.cache.policy import PrefetchKind
    from repro.sim.config import format_config

    config = SystemConfig(
        levels=(
            LevelConfig(
                size_bytes=2**l1_exp,
                block_bytes=2**l1_block_exp,
                split=split,
                prefetch=PrefetchKind.parse(prefetch),
            ),
            LevelConfig(
                size_bytes=2**l2_exp,
                block_bytes=2**l2_block_exp,
                associativity=2**assoc_exp,
                cycle_cpu_cycles=cycle,
            ),
        )
    )
    assert parse_config(format_config(config)) == config
