"""Tests for multi-level inclusion enforcement."""

import dataclasses


from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.functional import simulate_miss_ratios
from repro.sim.hierarchy import CacheHierarchy
from repro.trace.record import READ, WRITE
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def tiny_system(enforce_inclusion=True):
    """A deliberately tiny L2 under a roomy L1.

    The L1 (4 KB, 256 sets) spreads the 1 KB-stride march across distinct
    sets, so dropping the L1 copy of block 0 can only come from L2
    back-invalidation, never from a natural L1 conflict.
    """
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16),
            LevelConfig(size_bytes=1024, block_bytes=32),
        ),
        enforce_inclusion=enforce_inclusion,
    )


class TestBackInvalidation:
    def test_l2_eviction_invalidates_l1_copy(self):
        hierarchy = CacheHierarchy(tiny_system())
        hierarchy.access(READ, 0x0)
        assert hierarchy.dcache.contains(0x0)
        # March addresses that land in L2 set 0 (1024B DM, 32B blocks:
        # 32 sets; stride 1024) until block 0 is evicted from L2.
        for i in range(1, 4):
            hierarchy.access(READ, i * 1024)
        assert not hierarchy.lower[0].contains(0x0)
        assert not hierarchy.dcache.contains(0x0)
        assert hierarchy.inclusion.invalidations >= 1

    def test_without_enforcement_l1_keeps_copy(self):
        hierarchy = CacheHierarchy(tiny_system(enforce_inclusion=False))
        hierarchy.access(READ, 0x0)
        for i in range(1, 4):
            hierarchy.access(READ, i * 1024)
        assert not hierarchy.lower[0].contains(0x0)
        assert hierarchy.dcache.contains(0x0)
        assert hierarchy.inclusion.invalidations == 0

    def test_dirty_upstream_data_written_to_memory(self):
        hierarchy = CacheHierarchy(tiny_system())
        hierarchy.access(WRITE, 0x0)  # dirty in L1
        before = hierarchy.memory_traffic.writes
        for i in range(1, 4):
            hierarchy.access(READ, i * 1024)
        assert not hierarchy.dcache.contains(0x0)
        assert hierarchy.inclusion.dirty_invalidations >= 1
        assert hierarchy.memory_traffic.writes > before

    def test_invalidation_covers_whole_downstream_block(self):
        """Evicting one 32B L2 block must drop both 16B L1 blocks in it."""
        hierarchy = CacheHierarchy(tiny_system())
        hierarchy.access(READ, 0x0)
        hierarchy.access(READ, 0x10)  # second half of the same L2 block
        for i in range(1, 4):
            hierarchy.access(READ, i * 1024)
        assert not hierarchy.dcache.contains(0x0)
        assert not hierarchy.dcache.contains(0x10)

    def test_split_l1_instruction_side_invalidated(self):
        config = dataclasses.replace(
            tiny_system(),
            levels=(
                LevelConfig(size_bytes=1024, block_bytes=16, split=True),
                LevelConfig(size_bytes=1024, block_bytes=32),
            ),
        )
        hierarchy = CacheHierarchy(config)
        from repro.trace.record import IFETCH

        hierarchy.access(IFETCH, 0x0)
        for i in range(1, 4):
            hierarchy.access(IFETCH, i * 1024)
        assert not hierarchy.icache.contains(0x0)


class TestInclusionCost:
    def test_inclusion_never_reduces_l1_hits(self):
        """Enforced inclusion can only add L1 misses (back-invalidation
        victims), never remove them."""
        workload = SyntheticWorkload(seed=17)
        trace = workload.trace(30_000)
        base = SystemConfig(
            levels=(
                LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True),
                LevelConfig(size_bytes=8 * KB, block_bytes=32),
            )
        )
        incl = dataclasses.replace(base, enforce_inclusion=True)
        free = simulate_miss_ratios(trace, base)
        forced = simulate_miss_ratios(trace, incl)
        assert forced.global_read_miss_ratio(1) >= free.global_read_miss_ratio(1)

    def test_stats_reset_clears_inclusion_counters(self):
        hierarchy = CacheHierarchy(tiny_system())
        hierarchy.access(WRITE, 0x0)
        for i in range(1, 4):
            hierarchy.access(READ, i * 1024)
        hierarchy.reset_stats()
        assert hierarchy.inclusion.invalidations == 0


class TestCacheInvalidate:
    def test_invalidate_states(self):
        from repro.cache import Cache, CacheGeometry

        cache = Cache(CacheGeometry(256, 16, 2))
        assert cache.invalidate(0x0) == "absent"
        cache.read(0x0)
        assert cache.invalidate(0x0) == "clean"
        cache.write(0x10)
        assert cache.invalidate(0x10) == "dirty"
        assert not cache.contains(0x10)
