"""Tests for the functional (miss-ratio) simulator."""

import pytest

from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.functional import FunctionalSimulator, simulate_miss_ratios
from repro.trace.record import READ, WRITE, Trace
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def two_level(l1_kb=4, l2_kb=64):
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=l1_kb * KB, block_bytes=16, split=True),
            LevelConfig(size_bytes=l2_kb * KB, block_bytes=32, cycle_cpu_cycles=3),
        )
    )


def trace_of(records, warmup=0):
    return Trace.from_records(records, warmup=warmup)


class TestKnownAnswers:
    def test_single_cold_read(self):
        result = simulate_miss_ratios(trace_of([(READ, 0x1000)]), two_level())
        assert result.cpu_reads == 1
        assert result.local_read_miss_ratio(1) == 1.0
        assert result.local_read_miss_ratio(2) == 1.0
        assert result.global_read_miss_ratio(2) == 1.0
        assert result.memory_reads == 1

    def test_l1_filtering_shows_in_traffic_ratio(self):
        # Same address referenced 10 times: 1 miss, 9 hits.
        records = [(READ, 0x1000)] * 10
        result = simulate_miss_ratios(trace_of(records), two_level())
        assert result.global_read_miss_ratio(1) == pytest.approx(0.1)
        assert result.traffic_ratio(2) == pytest.approx(0.1)

    def test_local_vs_global_l2_ratio(self):
        # Two L1-conflicting addresses alternate: every access misses L1,
        # but after the cold pass both live in L2.
        config = two_level()
        l1_bytes = 2 * KB  # split halves
        a, b = 0x0, l1_bytes
        records = [(READ, a), (READ, b)] * 6
        result = simulate_miss_ratios(trace_of(records), config)
        assert result.local_read_miss_ratio(1) == pytest.approx(1.0)
        # L2: 12 reads, 2 cold misses.
        assert result.local_read_miss_ratio(2) == pytest.approx(2 / 12)
        assert result.global_read_miss_ratio(2) == pytest.approx(2 / 12)

    def test_writes_counted_separately(self):
        records = [(WRITE, 0x0), (READ, 0x0), (WRITE, 0x10)]
        result = simulate_miss_ratios(trace_of(records), two_level())
        assert result.cpu_writes == 2
        assert result.cpu_reads == 1


class TestWarmupHandling:
    def test_warmup_excluded_from_counts(self):
        # Warmup loads the block; the measured region only hits.
        records = [(READ, 0x1000)] + [(READ, 0x1000)] * 5
        result = simulate_miss_ratios(trace_of(records, warmup=1), two_level())
        assert result.cpu_reads == 5
        assert result.global_read_miss_ratio(1) == 0.0
        assert result.memory_reads == 0

    def test_warmup_affects_state_not_stats(self):
        records = [(WRITE, 0x1000), (READ, 0x1000)]
        result = simulate_miss_ratios(trace_of(records, warmup=1), two_level())
        assert result.cpu_writes == 0
        assert result.global_read_miss_ratio(1) == 0.0


class TestEmptyAndDegenerate:
    def test_empty_trace(self):
        result = simulate_miss_ratios(trace_of([]), two_level())
        assert result.cpu_reads == 0
        assert result.global_read_miss_ratio(1) == 0.0
        assert result.traffic_ratio(2) == 0.0

    def test_single_level_system(self):
        config = SystemConfig(levels=(LevelConfig(size_bytes=4 * KB, block_bytes=16),))
        result = simulate_miss_ratios(trace_of([(READ, 0)] * 3), config)
        assert result.depth == 1
        assert result.global_read_miss_ratio(1) == pytest.approx(1 / 3)
        assert result.memory_reads == 1


class TestConsistencyProperties:
    def test_global_ratio_never_exceeds_local(self):
        trace = SyntheticWorkload(seed=3).trace(30_000)
        result = simulate_miss_ratios(trace, two_level())
        for level in (1, 2):
            assert result.global_read_miss_ratio(level) <= (
                result.local_read_miss_ratio(level) + 1e-12
            )

    def test_l2_reads_equal_l1_read_misses(self):
        """The L2 read stream is exactly the L1 read-miss stream."""
        trace = SyntheticWorkload(seed=4).trace(30_000)
        result = simulate_miss_ratios(trace, two_level())
        l1, l2 = result.level_stats
        assert l2.reads == l1.read_misses

    def test_memory_reads_match_l2_demand_fetches(self):
        trace = SyntheticWorkload(seed=5).trace(30_000)
        result = simulate_miss_ratios(trace, two_level())
        l2 = result.level_stats[1]
        assert result.memory_reads == l2.blocks_fetched

    def test_miss_ratio_decreases_with_l2_size(self):
        trace = SyntheticWorkload(seed=6).trace(40_000)
        ratios = [
            simulate_miss_ratios(trace, two_level(l2_kb=size)).global_read_miss_ratio(2)
            for size in (8, 32, 128)
        ]
        assert ratios[0] >= ratios[1] >= ratios[2]

    def test_simulator_reusable_across_traces(self):
        sim = FunctionalSimulator(two_level())
        a = sim.run(SyntheticWorkload(seed=7).trace(5_000))
        b = sim.run(SyntheticWorkload(seed=7).trace(5_000))
        assert a.level_stats[0].reads == b.level_stats[0].reads


class TestLevelBounds:
    """Regression: level=0 used to fall through Python's negative indexing
    and silently report the deepest level's statistics."""

    @pytest.mark.parametrize("level", [0, -1, 3])
    @pytest.mark.parametrize(
        "accessor",
        ["local_read_miss_ratio", "global_read_miss_ratio", "traffic_ratio"],
    )
    def test_out_of_range_levels_rejected(self, accessor, level):
        result = simulate_miss_ratios(trace_of([(READ, 0x1000)]), two_level())
        with pytest.raises(ValueError, match="1..2"):
            getattr(result, accessor)(level)

    def test_valid_levels_accepted(self):
        result = simulate_miss_ratios(trace_of([(READ, 0x1000)]), two_level())
        for level in (1, 2):
            assert result.local_read_miss_ratio(level) == 1.0
            assert result.global_read_miss_ratio(level) == 1.0
            assert result.traffic_ratio(level) == 1.0
