"""The single-pass stack-distance engine against both simulators.

The contract: for an eligible configuration, ONE trace replay yields the
exact counts of every member associativity (1, 2, 4, 8, 16 ways at the
deepest level, set count held fixed) -- identical to the vectorised fast
path and to the reference ``FunctionalSimulator``.  These tests are what
lets the sweep planner (:mod:`repro.core.sweep`) derive grid cells from
one pass blindly.
"""

import numpy as np
import pytest

from repro.sim import memo
from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.fast import FastFunctionalSimulator
from repro.sim.functional import FunctionalSimulator
from repro.sim.stackdist import (
    STACK_ASSOCIATIVITIES,
    StackdistGridResult,
    clear_front_cache,
    grid_projection,
    member_config,
    run_stackdist_grid,
    stackdist_eligible,
)
from repro.trace.record import Trace
from repro.trace.workload import SyntheticWorkload
from repro.units import KB

COUNT_FIELDS = (
    "reads", "read_misses", "writes", "write_misses",
    "writebacks", "blocks_fetched",
)


@pytest.fixture(autouse=True)
def fresh_front_cache():
    clear_front_cache()
    yield
    clear_front_cache()


def two_level(split=True, l1_kb=4, l2_kb=32, l1_ways=1):
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=l1_kb * KB, block_bytes=16, split=split,
                        associativity=l1_ways),
            LevelConfig(size_bytes=l2_kb * KB, block_bytes=32,
                        cycle_cpu_cycles=3),
        )
    )


def assert_member_matches(derived, want, context):
    assert derived.cpu_reads == want.cpu_reads, context
    assert derived.cpu_writes == want.cpu_writes, context
    assert derived.cpu_ifetches == want.cpu_ifetches, context
    for level, (d, w) in enumerate(
        zip(derived.level_stats, want.level_stats), start=1
    ):
        for field in COUNT_FIELDS:
            assert getattr(d, field) == getattr(w, field), (
                f"{context}: level {level} {field}: "
                f"stackdist={getattr(d, field)} expected={getattr(w, field)}"
            )
    assert derived.memory_reads == want.memory_reads, context
    assert derived.memory_writes == want.memory_writes, context


def assert_grid_parity(trace, config, reference_ways=(1, 4, 16)):
    """stackdist == fast for every member; == reference on a subset
    (the reference simulator is orders of magnitude slower)."""
    grid = run_stackdist_grid(trace, config)
    for ways in STACK_ASSOCIATIVITIES:
        member = member_config(config, ways)
        derived = grid.result_for(ways)
        assert derived.config == member
        fast = FastFunctionalSimulator(member).run(trace)
        assert_member_matches(derived, fast, f"{ways}-way vs fast")
        if ways in reference_ways:
            reference = FunctionalSimulator(member).run(trace)
            assert_member_matches(derived, reference, f"{ways}-way vs reference")


class TestDifferentialParity:
    """The issue's randomized contract: seeded synthetic traces x the
    eligible configuration grid, counts identical across all three
    engines."""

    @pytest.mark.parametrize("seed", [301, 302, 303])
    @pytest.mark.parametrize("split", [True, False])
    def test_two_level(self, seed, split):
        trace = SyntheticWorkload(seed=seed).trace(10_000, warmup=2_000)
        assert_grid_parity(trace, two_level(split=split))

    @pytest.mark.parametrize("seed", [311, 312])
    def test_single_level(self, seed):
        trace = SyntheticWorkload(seed=seed).trace(8_000, warmup=1_000)
        config = SystemConfig(
            levels=(LevelConfig(size_bytes=2 * KB, block_bytes=16),)
        )
        assert_grid_parity(trace, config)

    def test_single_level_split(self):
        trace = SyntheticWorkload(seed=313).trace(8_000)
        config = SystemConfig(
            levels=(LevelConfig(size_bytes=2 * KB, block_bytes=16, split=True),)
        )
        assert_grid_parity(trace, config)

    def test_associative_upstream(self):
        trace = SyntheticWorkload(seed=314).trace(10_000, warmup=2_000)
        assert_grid_parity(trace, two_level(l1_kb=2, l1_ways=4))

    def test_three_levels(self):
        trace = SyntheticWorkload(seed=315).trace(10_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=2 * KB, block_bytes=16, split=True),
                LevelConfig(size_bytes=8 * KB, block_bytes=32,
                            cycle_cpu_cycles=3),
                LevelConfig(size_bytes=64 * KB, block_bytes=64,
                            cycle_cpu_cycles=6),
            )
        )
        assert_grid_parity(trace, config, reference_ways=(1, 16))

    def test_one_set_deepest_level(self):
        # sets == 1: the stack pass degenerates to a single global LRU
        # stack; members are fully-associative caches of 1..16 blocks.
        trace = SyntheticWorkload(seed=316).trace(6_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=256, block_bytes=16, associativity=16),
                LevelConfig(size_bytes=32, block_bytes=32, cycle_cpu_cycles=3),
            )
        )
        assert_grid_parity(trace, config, reference_ways=(1, 2, 16))

    def test_multiprogram_trace(self, small_traces=None):
        from repro.trace.multiprogram import MultiprogramScheduler, ProcessSpec

        processes = [
            ProcessSpec(
                name=f"p{i}",
                workload=SyntheticWorkload(seed=320 + i, address_base=i << 44),
            )
            for i in range(1, 3)
        ]
        trace = MultiprogramScheduler(
            processes, switch_interval=2_000, seed=5
        ).trace(12_000, warmup=2_000)
        assert_grid_parity(trace, two_level(), reference_ways=(2,))

    def test_empty_trace(self):
        empty = Trace(np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.uint64))
        grid = run_stackdist_grid(empty, two_level())
        for ways in STACK_ASSOCIATIVITIES:
            result = grid.result_for(ways)
            assert result.cpu_reads == 0
            assert result.memory_reads == 0
            assert result.memory_writes == 0


class TestEligibility:
    def test_lru_two_level_is_eligible(self):
        assert stackdist_eligible(two_level())

    def test_direct_mapped_deepest_is_eligible_under_any_policy(self):
        # One way leaves nothing for the stated policy to choose:
        # a "fifo" direct-mapped deepest level is still derivable.
        config = two_level().with_level(1, replacement="fifo")
        assert config.levels[-1].associativity == 1
        assert stackdist_eligible(config)

    def test_fifo_associative_deepest_falls_back(self):
        config = two_level().with_level(1, associativity=2, replacement="fifo")
        assert not stackdist_eligible(config)

    @pytest.mark.parametrize(
        "changes",
        [
            {"associativity": 32},
            {"write_policy": "write-through"},
            {"write_allocate": False},
            {"fetch_blocks": 2},
            {"prefetch": "on-miss"},
        ],
    )
    def test_fast_ineligible_implies_stackdist_ineligible(self, changes):
        assert not stackdist_eligible(two_level().with_level(1, **changes))

    def test_ineligible_config_raises(self):
        trace = SyntheticWorkload(seed=330).trace(1_000)
        config = two_level().with_level(1, associativity=2, replacement="fifo")
        with pytest.raises(ValueError, match="stack-distance"):
            run_stackdist_grid(trace, config)


class TestGrouping:
    def test_members_share_a_projection(self):
        base = two_level()
        members = [
            base.with_level(1, associativity=a, size_bytes=32 * KB * a)
            for a in STACK_ASSOCIATIVITIES
        ]
        projections = {grid_projection(m) for m in members}
        assert len(projections) == 1

    def test_different_set_counts_split_groups(self):
        assert grid_projection(two_level(l2_kb=32)) != (
            grid_projection(two_level(l2_kb=64))
        )

    def test_member_config_round_trip(self):
        base = two_level()
        sets = base.levels[-1].geometry().sets
        for ways in STACK_ASSOCIATIVITIES:
            member = member_config(base, ways)
            assert member.levels[-1].geometry().sets == sets
            assert member.levels[-1].associativity == ways

    def test_member_memo_key_matches_requested_config(self):
        # The planner fans grid members back into the memo cache keyed
        # by member_config; a sweep's own cell keys must line up even
        # when the cell states a functionally-inert replacement policy.
        trace = SyntheticWorkload(seed=331).trace(1_000)
        base = two_level()
        requested = base.with_level(1, associativity=4, size_bytes=128 * KB)
        assert memo.memo_key(trace, member_config(base, 4)) == (
            memo.memo_key(trace, requested)
        )

    def test_result_for_unknown_associativity(self):
        trace = SyntheticWorkload(seed=332).trace(1_000)
        grid = run_stackdist_grid(trace, two_level())
        assert isinstance(grid, StackdistGridResult)
        with pytest.raises(KeyError):
            grid.result_for(3)


class TestFrontCache:
    def test_cached_front_is_deterministic(self):
        trace = SyntheticWorkload(seed=333).trace(6_000, warmup=1_000)
        config = two_level()
        first = run_stackdist_grid(trace, config)
        # Second grid at a different set count reuses the cached L1
        # replay; counts must be unaffected by the cache.
        run_stackdist_grid(trace, two_level(l2_kb=64))
        clear_front_cache()
        cold = run_stackdist_grid(trace, config)
        for ways in STACK_ASSOCIATIVITIES:
            assert_member_matches(
                first.result_for(ways), cold.result_for(ways), f"{ways}-way"
            )

    def test_upstream_stats_are_private_copies(self):
        trace = SyntheticWorkload(seed=334).trace(4_000)
        config = two_level()
        first = run_stackdist_grid(trace, config)
        first.result_for(1).level_stats[0].reads += 999
        second = run_stackdist_grid(trace, config)
        assert second.result_for(1).level_stats[0].reads != (
            first.result_for(1).level_stats[0].reads
        )

    def test_block_shrink_across_levels_rejected(self):
        trace = SyntheticWorkload(seed=335).trace(1_000)
        config = SystemConfig(
            levels=(
                LevelConfig(size_bytes=2 * KB, block_bytes=32),
                LevelConfig(size_bytes=16 * KB, block_bytes=16,
                            cycle_cpu_cycles=3),
            )
        )
        with pytest.raises(ValueError, match="at least as large"):
            run_stackdist_grid(trace, config)
