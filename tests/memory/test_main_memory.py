"""Tests for the DRAM timing model."""

import pytest

from repro.memory.main_memory import MainMemory, MemoryTiming


class TestMemoryTiming:
    def test_defaults_match_paper(self):
        timing = MemoryTiming()
        assert timing.read_ns == 180.0
        assert timing.write_ns == 100.0
        assert timing.recovery_ns == 120.0

    def test_scaled_doubles_everything(self):
        slow = MemoryTiming().scaled(2.0)
        assert slow.read_ns == 360.0
        assert slow.write_ns == 200.0
        assert slow.recovery_ns == 240.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_ns": 0.0},
            {"write_ns": -1.0},
            {"recovery_ns": -0.1},
        ],
    )
    def test_invalid_timing_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MemoryTiming(**kwargs)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            MemoryTiming().scaled(0.0)


class TestMainMemory:
    def test_idle_read_takes_read_time(self):
        memory = MainMemory()
        assert memory.read(ready=1000.0) == 1180.0

    def test_idle_write_takes_write_time(self):
        memory = MainMemory()
        assert memory.write(ready=1000.0) == 1100.0

    def test_recovery_enforced_between_operations(self):
        memory = MainMemory()
        first_end = memory.read(ready=0.0)  # ends at 180
        second_end = memory.read(ready=first_end)  # must wait 120
        assert second_end == 180.0 + 120.0 + 180.0

    def test_recovery_not_charged_when_enough_time_elapsed(self):
        memory = MainMemory()
        memory.read(ready=0.0)  # ends at 180
        assert memory.read(ready=500.0) == 680.0
        assert memory.recovery_wait_ns == 0.0

    def test_partial_recovery_wait(self):
        memory = MainMemory()
        memory.write(ready=0.0)  # ends at 100
        # Arrives at 150; recovery window ends at 220.
        assert memory.read(ready=150.0) == 220.0 + 180.0
        assert memory.recovery_wait_ns == pytest.approx(70.0)

    def test_operation_counters(self):
        memory = MainMemory()
        memory.read(0.0)
        memory.write(1000.0)
        memory.read(2000.0)
        assert memory.reads == 2
        assert memory.writes == 1

    def test_reset_clears_state(self):
        memory = MainMemory()
        memory.read(0.0)
        memory.reset()
        assert memory.reads == 0
        assert memory.read(ready=0.0) == 180.0

    def test_first_operation_never_waits(self):
        memory = MainMemory()
        memory.read(ready=0.0)
        assert memory.recovery_wait_ns == 0.0


class TestPaperPenaltyRange:
    """The base machine's L2 miss penalty should span roughly 270-390 ns."""

    def test_miss_penalty_bounds(self):
        from repro.memory.bus import Bus

        l2_cycle = 30.0
        bus = Bus(width_words=4, cycle_ns=l2_cycle)
        memory = MainMemory()

        def l2_miss_penalty(now):
            addr_done = now + bus.address_time()
            data_at_pins = memory.read(ready=addr_done)
            return (data_at_pins + bus.data_time(32)) - now

        # Idle memory: the paper's nominal 270 ns.
        assert l2_miss_penalty(10_000.0) == pytest.approx(270.0)
        # Back-to-back: recovery makes it worse, bounded by +recovery.
        memory.reset()
        first_end = memory.read(ready=0.0)
        worst = l2_miss_penalty(first_end - bus.address_time())
        assert 270.0 < worst <= 270.0 + memory.timing.recovery_ns
