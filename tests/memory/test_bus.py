"""Tests for the bus model."""

import pytest

from repro.memory.bus import Bus


class TestTransferTimes:
    def test_width_bytes(self):
        assert Bus(width_words=4, cycle_ns=30.0).width_bytes == 16

    def test_data_cycles_rounds_up(self):
        bus = Bus(width_words=4, cycle_ns=30.0)
        assert bus.data_cycles(16) == 1
        assert bus.data_cycles(17) == 2
        assert bus.data_cycles(32) == 2
        assert bus.data_cycles(0) == 0

    def test_base_machine_l2_block_takes_two_cycles(self):
        """8-word L2 block over the 4-word memory bus: 2 data cycles."""
        bus = Bus(width_words=4, cycle_ns=30.0)
        assert bus.data_time(32) == pytest.approx(60.0)

    def test_address_time_is_one_cycle(self):
        assert Bus(width_words=4, cycle_ns=25.0).address_time() == pytest.approx(25.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bus(width_words=4, cycle_ns=30.0).data_time(-1)


class TestContention:
    def test_acquire_when_idle(self):
        bus = Bus(width_words=4, cycle_ns=30.0)
        assert bus.acquire(now=100.0, duration=60.0) == 160.0

    def test_acquire_queues_behind_transfer(self):
        bus = Bus(width_words=4, cycle_ns=30.0)
        bus.acquire(now=0.0, duration=60.0)
        assert bus.acquire(now=10.0, duration=30.0) == 90.0

    def test_reset_clears_occupancy(self):
        bus = Bus(width_words=4, cycle_ns=30.0)
        bus.acquire(now=0.0, duration=500.0)
        bus.reset()
        assert bus.acquire(now=0.0, duration=30.0) == 30.0


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Bus(width_words=0, cycle_ns=30.0)

    def test_nonpositive_cycle_rejected(self):
        with pytest.raises(ValueError):
            Bus(width_words=4, cycle_ns=0.0)
