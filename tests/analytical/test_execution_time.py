"""Tests for the Equation 1 execution-time model, including validation
against the timing simulator (experiment E-EQ1 in DESIGN.md)."""

import pytest

from repro.analytical.execution_time import (
    ExecutionTimeModel,
    memory_penalty_cycles,
    model_from_functional,
)
from repro.sim.config import LevelConfig, SystemConfig
from repro.sim.functional import simulate_miss_ratios
from repro.sim.timing import simulate_execution_time
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


def base_machine(l2_kb=64):
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=4 * KB, block_bytes=16, split=True),
            LevelConfig(size_bytes=l2_kb * KB, block_bytes=32, cycle_cpu_cycles=3),
        )
    )


class TestModelAlgebra:
    def test_paper_form_two_levels(self):
        # N_read(n_L1 + M_L1 n_L2 + M_L2 n_MM) + N_store t_w
        model = ExecutionTimeModel(
            n_l1_cycles=1.0,
            global_miss=(0.1, 0.02),
            miss_costs=(3.0, 27.0),
            l1_write_cycles=2.0,
        )
        assert model.read_cpi == pytest.approx(1 + 0.1 * 3 + 0.02 * 27)
        assert model.total_cycles(1000, 100) == pytest.approx(
            1000 * (1 + 0.3 + 0.54) + 200
        )

    def test_total_time_ns(self):
        model = ExecutionTimeModel(
            n_l1_cycles=1.0, global_miss=(0.0,), miss_costs=(27.0,)
        )
        assert model.total_time_ns(100, 0, cpu_cycle_ns=10.0) == pytest.approx(1000.0)

    def test_three_level_model(self):
        model = ExecutionTimeModel(
            n_l1_cycles=1.0,
            global_miss=(0.1, 0.02, 0.005),
            miss_costs=(3.0, 10.0, 50.0),
        )
        assert model.read_cpi == pytest.approx(1 + 0.3 + 0.2 + 0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_l1_cycles": 0.0, "global_miss": (0.1,), "miss_costs": (3.0,)},
            {"n_l1_cycles": 1.0, "global_miss": (1.2,), "miss_costs": (3.0,)},
            {"n_l1_cycles": 1.0, "global_miss": (0.1, 0.2), "miss_costs": (3.0,)},
        ],
    )
    def test_invalid_models_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionTimeModel(**kwargs)

    def test_negative_counts_rejected(self):
        model = ExecutionTimeModel(
            n_l1_cycles=1.0, global_miss=(0.1,), miss_costs=(3.0,)
        )
        with pytest.raises(ValueError):
            model.total_cycles(-1)


class TestMemoryPenalty:
    def test_base_machine_nominal_penalty_is_27_cycles(self):
        # 30 ns address + 180 ns read + 60 ns transfer = 270 ns = 27 cycles.
        assert memory_penalty_cycles(base_machine()) == pytest.approx(27.0)

    def test_slower_memory_raises_penalty(self):
        from repro.memory.main_memory import MemoryTiming

        slow = base_machine().with_memory(MemoryTiming().scaled(2.0))
        assert memory_penalty_cycles(slow) == pytest.approx(45.0)


class TestEquationOneValidation:
    """E-EQ1: Equation 1 fed with measured counts must reproduce the timing
    simulator's read-side execution time."""

    def test_model_matches_timing_simulation(self):
        config = base_machine(l2_kb=64)
        trace = SyntheticWorkload(seed=21).trace(60_000, warmup=10_000)
        functional = simulate_miss_ratios(trace, config)
        timing = simulate_execution_time(trace, config)

        model = model_from_functional(functional, config)
        predicted = model.total_cycles(functional.cpu_reads, 0)
        # Compare against the read side of the measured time: base cycles
        # plus read stalls (write effects are the model's stated exclusion;
        # the paper's footnote 2 makes the same simplification).
        measured_ns = timing.total_ns - timing.write_stall_ns
        measured_cycles = measured_ns / config.cpu.cycle_ns
        assert predicted == pytest.approx(measured_cycles, rel=0.10)

    def test_model_tracks_l2_size_trend(self):
        """Equation 1 must rank configurations like the timing simulator."""
        trace = SyntheticWorkload(seed=22).trace(40_000, warmup=8_000)
        predicted, measured = [], []
        for l2_kb in (8, 64):
            config = base_machine(l2_kb=l2_kb)
            functional = simulate_miss_ratios(trace, config)
            model = model_from_functional(functional, config)
            predicted.append(model.total_cycles(functional.cpu_reads))
            measured.append(simulate_execution_time(trace, config).total_ns)
        assert (predicted[0] > predicted[1]) == (measured[0] > measured[1])

    def test_model_from_functional_uses_global_ratios(self):
        config = base_machine()
        trace = SyntheticWorkload(seed=23).trace(20_000, warmup=4_000)
        functional = simulate_miss_ratios(trace, config)
        model = model_from_functional(functional, config)
        assert model.global_miss[0] == pytest.approx(
            functional.global_read_miss_ratio(1)
        )
        assert model.global_miss[1] == pytest.approx(
            functional.global_read_miss_ratio(2)
        )
        assert model.miss_costs[0] == pytest.approx(3.0)
        assert model.miss_costs[1] == pytest.approx(27.0)
