"""Tests for Smith's set-associative miss model."""

import numpy as np
import pytest

from repro.analytical.setassoc import (
    associativity_curve,
    miss_probability_by_distance,
    miss_ratio_spread,
    predicted_miss_ratio,
)
from repro.trace.record import READ, Trace
from repro.trace.stats import StackDistanceProfile, stack_distance_profile


def profile_of(distances, cold=0):
    return StackDistanceProfile(
        distances=np.array(distances, dtype=np.int64),
        cold_references=cold,
        block_bytes=16,
    )


class TestMissProbability:
    def test_fully_associative_is_exact_threshold(self):
        probs = miss_probability_by_distance(
            np.array([1, 2, 3, 4, 5]), sets=1, associativity=3
        )
        assert probs.tolist() == [0.0, 0.0, 0.0, 1.0, 1.0]

    def test_immediate_reuse_never_misses(self):
        probs = miss_probability_by_distance(
            np.array([1]), sets=64, associativity=1
        )
        assert probs[0] == pytest.approx(0.0)

    def test_direct_mapped_closed_form(self):
        # P(miss | d) = 1 - (1 - 1/S)^(d-1) for A=1.
        sets = 16
        for d in (2, 5, 20):
            expected = 1.0 - (1.0 - 1.0 / sets) ** (d - 1)
            probs = miss_probability_by_distance(
                np.array([d]), sets=sets, associativity=1
            )
            assert probs[0] == pytest.approx(expected)

    def test_associativity_helps_at_short_distances(self):
        """At fixed capacity, higher associativity lowers the per-distance
        miss probability for distances well below the capacity (at
        distances near capacity the fewer-sets penalty can win -- a real
        property of the model, dominated in aggregate by the short-distance
        mass of real programs)."""
        distances = np.arange(1, 17)  # well below the 32-block capacity
        one = miss_probability_by_distance(distances, 32, 1)
        two = miss_probability_by_distance(distances, 16, 2)
        four = miss_probability_by_distance(distances, 8, 4)
        assert np.all(two <= one + 1e-12)
        assert np.all(four <= two + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_probability_by_distance(np.array([0]), 4, 1)
        with pytest.raises(ValueError):
            miss_probability_by_distance(np.array([1]), 0, 1)


class TestPredictedMissRatio:
    def test_cold_references_always_miss(self):
        profile = profile_of([], cold=10)
        assert predicted_miss_ratio(profile, 16, 2) == pytest.approx(1.0)

    def test_empty_profile(self):
        assert predicted_miss_ratio(profile_of([]), 16, 2) == 0.0

    def test_fully_associative_matches_profile_exactly(self):
        rng = np.random.default_rng(7)
        blocks = rng.integers(0, 50, size=600).tolist()
        trace = Trace.from_records([(READ, b * 16) for b in blocks])
        profile = stack_distance_profile(trace)
        for capacity in (4, 16, 64):
            predicted = predicted_miss_ratio(profile, 1, capacity)
            exact = profile.miss_ratio_at(capacity)
            assert predicted == pytest.approx(exact)

    def test_direct_mapped_prediction_tracks_simulation(self):
        """On a randomly-addressed trace the uniform-mapping assumption
        holds, so the prediction should track a simulated cache closely."""
        from repro.cache import Cache, CacheGeometry

        rng = np.random.default_rng(9)
        blocks = rng.integers(0, 300, size=5000)
        trace = Trace.from_records([(READ, int(b) * 16) for b in blocks])
        profile = stack_distance_profile(trace)
        cache = Cache(CacheGeometry(128 * 16, 16, 1))  # 128 sets
        for _, address in trace.records():
            cache.read(address)
        simulated = cache.stats.read_miss_ratio
        predicted = predicted_miss_ratio(profile, 128, 1)
        # The model assumes fresh random mappings per reuse; a real cache
        # has one fixed mapping per block, which biases it a few percent.
        assert predicted == pytest.approx(simulated, rel=0.15)

    def test_four_way_prediction_tracks_simulation(self):
        from repro.cache import Cache, CacheGeometry

        rng = np.random.default_rng(11)
        blocks = rng.integers(0, 300, size=5000)
        trace = Trace.from_records([(READ, int(b) * 16) for b in blocks])
        profile = stack_distance_profile(trace)
        cache = Cache(CacheGeometry(128 * 16, 16, 4))  # 32 sets, 4-way
        for _, address in trace.records():
            cache.read(address)
        simulated = cache.stats.read_miss_ratio
        predicted = predicted_miss_ratio(profile, 32, 4)
        assert predicted == pytest.approx(simulated, rel=0.15)


class TestAssociativityCurve:
    def test_curve_monotone_in_ways(self):
        rng = np.random.default_rng(13)
        blocks = rng.integers(0, 200, size=3000)
        trace = Trace.from_records([(READ, int(b) * 16) for b in blocks])
        profile = stack_distance_profile(trace)
        curve = associativity_curve(profile, capacity_blocks=64)
        assert curve[1] >= curve[2] >= curve[4] >= curve[8]

    def test_spread_is_nonnegative_and_consistent(self):
        rng = np.random.default_rng(15)
        blocks = rng.integers(0, 200, size=3000)
        trace = Trace.from_records([(READ, int(b) * 16) for b in blocks])
        profile = stack_distance_profile(trace)
        spread = miss_ratio_spread(profile, 64)
        assert spread >= -1e-12
        curve = associativity_curve(profile, 64, set_sizes=(1, 64))
        assert spread == pytest.approx(curve[1] - curve[64])

    def test_oversized_ways_rejected(self):
        with pytest.raises(ValueError):
            associativity_curve(profile_of([1, 2]), 4, set_sizes=(8,))
