"""Tests for the Equation 2 speed-size tradeoff."""

import math

import pytest

from repro.analytical.missrate import PowerLawMissModel
from repro.analytical.tradeoff import (
    LinearCycleModel,
    LogLinearCycleModel,
    breakeven_slope_cycles_per_doubling,
    optimal_l2_size,
    optimal_size_shift_per_l1_doubling,
)
from repro.units import KB, MB


def paper_miss_model():
    """L2 solo miss curve: ~10% at 4 KB falling 0.69x per doubling."""
    return PowerLawMissModel.from_doubling_factor(0.69, 4 * KB, 0.10)


class TestCycleModel:
    def test_log_linear_growth(self):
        model = LogLinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_doubling=2.0)
        assert model.cycle_ns(4 * KB) == pytest.approx(20.0)
        assert model.cycle_ns(16 * KB) == pytest.approx(24.0)
        assert model.cycle_ns(2 * KB) == pytest.approx(18.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_size": 0, "base_ns": 20.0, "ns_per_doubling": 1.0},
            {"base_size": 4096, "base_ns": 0.0, "ns_per_doubling": 1.0},
            {"base_size": 4096, "base_ns": 20.0, "ns_per_doubling": -1.0},
        ],
    )
    def test_invalid_models_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LogLinearCycleModel(**kwargs)

    def test_invalid_size_rejected(self):
        model = LogLinearCycleModel(base_size=4096, base_ns=20.0, ns_per_doubling=1.0)
        with pytest.raises(ValueError):
            model.cycle_ns(0)


class TestLinearCycleModel:
    def test_linear_growth(self):
        model = LinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_byte=0.001)
        assert model.cycle_ns(4 * KB) == pytest.approx(20.0)
        assert model.cycle_ns(8 * KB) == pytest.approx(20.0 + 4096 * 0.001)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearCycleModel(base_size=0, base_ns=20.0, ns_per_byte=0.001)
        with pytest.raises(ValueError):
            LinearCycleModel(base_size=4096, base_ns=20.0, ns_per_byte=-1.0)


class TestOptimalSizeShift:
    def test_paper_third_of_a_binary_order(self):
        """Section 4: each L1 doubling shifts the optimal L2 size right by
        about a third of a binary order of magnitude."""
        alpha = -math.log2(0.69)
        shift = optimal_size_shift_per_l1_doubling(alpha, 0.69, "linear")
        assert math.log2(shift) == pytest.approx(1 / 3, abs=0.05)

    def test_paper_prediction_for_8x_l1(self):
        """Across Figures 4-2 and 4-3 the L1 grew 8x; the paper's model
        predicts a 2.04x shift of the constant-performance lines."""
        alpha = -math.log2(0.69)
        per_doubling = optimal_size_shift_per_l1_doubling(alpha, 0.69, "linear")
        assert per_doubling**3 == pytest.approx(2.04, abs=0.1)

    def test_per_doubling_cost_model_shifts_faster(self):
        alpha = 0.5
        linear = optimal_size_shift_per_l1_doubling(alpha, 0.69, "linear")
        log = optimal_size_shift_per_l1_doubling(alpha, 0.69, "per-doubling")
        assert log > linear

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            optimal_size_shift_per_l1_doubling(0.0, 0.69)
        with pytest.raises(ValueError):
            optimal_size_shift_per_l1_doubling(0.5, 1.5)
        with pytest.raises(ValueError):
            optimal_size_shift_per_l1_doubling(0.5, 0.69, "quadratic")


class TestBreakevenSlope:
    def test_l1_filtering_multiplies_slope(self):
        """Equation 2's 1/M_L1 factor: a 10% L1 makes the allowed L2
        cycle-time degradation 10x the single-level value."""
        miss = paper_miss_model()
        single = breakeven_slope_cycles_per_doubling(miss, 64 * KB, 1.0, 27.0)
        filtered = breakeven_slope_cycles_per_doubling(miss, 64 * KB, 0.1, 27.0)
        assert filtered == pytest.approx(10.0 * single)

    def test_slope_decreases_with_size(self):
        """Bigger caches gain less per doubling: flatter iso-performance
        lines to the right of the design plane (Figure 4-2)."""
        miss = paper_miss_model()
        slopes = [
            breakeven_slope_cycles_per_doubling(miss, size, 0.1, 27.0)
            for size in (16 * KB, 128 * KB, 1 * MB)
        ]
        assert slopes[0] > slopes[1] > slopes[2]

    def test_memory_penalty_scales_linearly(self):
        """Figure 4-4: slower memory skews the tradeoff toward size."""
        miss = paper_miss_model()
        base = breakeven_slope_cycles_per_doubling(miss, 64 * KB, 0.1, 27.0)
        slow = breakeven_slope_cycles_per_doubling(miss, 64 * KB, 0.1, 54.0)
        assert slow == pytest.approx(2.0 * base)

    def test_invalid_arguments_rejected(self):
        miss = paper_miss_model()
        with pytest.raises(ValueError):
            breakeven_slope_cycles_per_doubling(miss, 64 * KB, 0.0, 27.0)
        with pytest.raises(ValueError):
            breakeven_slope_cycles_per_doubling(miss, 64 * KB, 0.1, 0.0)


class TestOptimalSize:
    SIZES = [2**i * KB for i in range(2, 13)]  # 4 KB .. 4 MB

    def test_lower_l1_miss_ratio_grows_optimal_l2(self):
        """The paper's core claim: better upstream filtering moves the
        optimal downstream cache toward larger and slower."""
        miss = paper_miss_model()
        cycle = LogLinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_doubling=3.0)
        big_l1_miss = optimal_l2_size(miss, cycle, 0.5, 270.0, self.SIZES)
        small_l1_miss = optimal_l2_size(miss, cycle, 0.05, 270.0, self.SIZES)
        assert small_l1_miss > big_l1_miss

    def test_slower_memory_grows_optimal_l2(self):
        miss = paper_miss_model()
        cycle = LogLinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_doubling=3.0)
        fast = optimal_l2_size(miss, cycle, 0.1, 270.0, self.SIZES)
        slow = optimal_l2_size(miss, cycle, 0.1, 540.0, self.SIZES)
        assert slow >= fast

    def test_free_size_increase_is_always_taken(self):
        miss = paper_miss_model()
        cycle = LogLinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_doubling=0.0)
        best = optimal_l2_size(miss, cycle, 0.1, 270.0, self.SIZES)
        assert best == self.SIZES[-1]

    def test_sixteenfold_l1_rule(self):
        """Section 4: with miss ~ 1/sqrt(size) and a marginal cycle-time
        cost independent of size (linear model), a 16-fold L1 growth is
        needed for the optimal L2 size to double (roughly: the optimum
        scales as M_L1^(-1/(1+alpha)))."""
        from repro.analytical.tradeoff import LinearCycleModel

        miss = PowerLawMissModel(reference_size=4 * KB, reference_miss=0.10, alpha=0.5)
        cycle = LinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_byte=1e-4)
        # A fine (quarter-power-of-two) grid approximates the continuum.
        sizes = [4 * KB * 2 ** (i / 4) for i in range(0, 60)]

        def optimum(l1_miss):
            return optimal_l2_size(miss, cycle, l1_miss, 270.0, sizes)

        base_l1_miss = 0.10
        base_opt = optimum(base_l1_miss)
        # 16x L1 with miss ~ 1/sqrt(size): its miss ratio falls 4x; the
        # optimum should roughly double (4 ** (1/1.5) ~ 2.5; the paper
        # rounds to "double").
        grown_opt = optimum(base_l1_miss / 4.0)
        assert 1.8 <= grown_opt / base_opt <= 3.2

    def test_validation_errors(self):
        miss = paper_miss_model()
        cycle = LogLinearCycleModel(base_size=4 * KB, base_ns=20.0, ns_per_doubling=1.0)
        with pytest.raises(ValueError):
            optimal_l2_size(miss, cycle, 0.1, 270.0, [])
        with pytest.raises(ValueError):
            optimal_l2_size(miss, cycle, 0.0, 270.0, self.SIZES)
