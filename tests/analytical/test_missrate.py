"""Tests for the power-law miss-rate model and fitting."""

import numpy as np
import pytest

from repro.analytical.missrate import PowerLawMissModel, fit_power_law


class TestModel:
    def test_doubling_factor(self):
        model = PowerLawMissModel.from_doubling_factor(0.69, 4096, 0.1)
        assert model.doubling_factor == pytest.approx(0.69)
        assert model.miss_ratio(8192) == pytest.approx(0.069)

    def test_square_root_rule(self):
        """alpha ~ 0.5 means miss ~ 1/sqrt(size), the paper's reading."""
        model = PowerLawMissModel(reference_size=1024, reference_miss=0.2, alpha=0.5)
        assert model.miss_ratio(4096) == pytest.approx(0.1)

    def test_clamped_to_one(self):
        model = PowerLawMissModel(reference_size=4096, reference_miss=0.5, alpha=1.0)
        assert model.miss_ratio(16) == 1.0

    def test_derivative_negative_and_consistent(self):
        model = PowerLawMissModel.from_doubling_factor(0.69, 4096, 0.1)
        size = 65536.0
        h = 1.0
        numeric = (model.miss_ratio(size + h) - model.miss_ratio(size - h)) / (2 * h)
        assert model.derivative(size) == pytest.approx(numeric, rel=1e-4)
        assert model.derivative(size) < 0

    def test_size_for_miss_inverts_miss_ratio(self):
        model = PowerLawMissModel.from_doubling_factor(0.69, 4096, 0.1)
        target = 0.03
        size = model.size_for_miss(target)
        assert model.miss_ratio(size) == pytest.approx(target)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reference_size": 0, "reference_miss": 0.1, "alpha": 0.5},
            {"reference_size": 1024, "reference_miss": 0.0, "alpha": 0.5},
            {"reference_size": 1024, "reference_miss": 0.1, "alpha": 0.0},
        ],
    )
    def test_invalid_models_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PowerLawMissModel(**kwargs)

    def test_invalid_queries_rejected(self):
        model = PowerLawMissModel(reference_size=1024, reference_miss=0.1, alpha=0.5)
        with pytest.raises(ValueError):
            model.miss_ratio(0)
        with pytest.raises(ValueError):
            model.size_for_miss(0.0)


class TestFit:
    def test_exact_recovery_on_synthetic_data(self):
        truth = PowerLawMissModel.from_doubling_factor(0.69, 4096, 0.12)
        sizes = [4096 * 2**i for i in range(8)]
        ratios = [truth.miss_ratio(s) for s in sizes]
        model, r2 = fit_power_law(sizes, ratios)
        assert model.doubling_factor == pytest.approx(0.69, rel=1e-6)
        assert r2 == pytest.approx(1.0)
        assert model.miss_ratio(65536) == pytest.approx(truth.miss_ratio(65536))

    def test_noisy_fit_recovers_slope(self):
        rng = np.random.default_rng(1)
        truth = PowerLawMissModel.from_doubling_factor(0.7, 4096, 0.1)
        sizes = [4096 * 2**i for i in range(10)]
        ratios = [truth.miss_ratio(s) * rng.uniform(0.95, 1.05) for s in sizes]
        model, r2 = fit_power_law(sizes, ratios)
        assert model.doubling_factor == pytest.approx(0.7, abs=0.03)
        assert r2 > 0.98

    def test_zero_points_excluded(self):
        truth = PowerLawMissModel.from_doubling_factor(0.69, 4096, 0.1)
        sizes = [4096, 8192, 16384, 32768]
        ratios = [truth.miss_ratio(s) for s in sizes[:-1]] + [0.0]
        model, _ = fit_power_law(sizes, ratios)
        assert model.doubling_factor == pytest.approx(0.69, rel=1e-6)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_power_law([4096], [0.1])

    def test_increasing_ratios_rejected(self):
        with pytest.raises(ValueError, match="power law"):
            fit_power_law([1024, 2048, 4096], [0.01, 0.02, 0.04])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            fit_power_law([1024, 2048], [0.1])
