"""Tests for the Equation 3 break-even associativity times."""

import pytest

from repro.analytical.associativity import (
    cumulative_breakeven_ns,
    incremental_breakeven_ns,
    l1_scaling_factor,
)


class TestIncremental:
    def test_equation_three(self):
        # Delta-M * t_MM / M_L1.
        assert incremental_breakeven_ns(0.005, 270.0, 0.1) == pytest.approx(13.5)

    def test_l1_filtering_multiplies_budget(self):
        solo = incremental_breakeven_ns(0.005, 270.0, 1.0)
        filtered = incremental_breakeven_ns(0.005, 270.0, 0.1)
        assert filtered == pytest.approx(10.0 * solo)

    def test_no_improvement_means_no_budget(self):
        assert incremental_breakeven_ns(-0.001, 270.0, 0.1) == 0.0
        assert incremental_breakeven_ns(0.0, 270.0, 0.1) == 0.0

    def test_linear_in_memory_time(self):
        """Section 5: break-even times increase linearly with the main
        memory access time."""
        base = incremental_breakeven_ns(0.004, 270.0, 0.1)
        slow = incremental_breakeven_ns(0.004, 540.0, 0.1)
        assert slow == pytest.approx(2.0 * base)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            incremental_breakeven_ns(0.01, 0.0, 0.1)
        with pytest.raises(ValueError):
            incremental_breakeven_ns(0.01, 270.0, 0.0)


class TestCumulative:
    def test_sums_incremental_budgets(self):
        # Chain 1 -> 2 -> 4 -> 8 way.
        ratios = [0.020, 0.016, 0.014, 0.013]
        cumulative = cumulative_breakeven_ns(ratios, 270.0, 0.1)
        incremental = sum(
            incremental_breakeven_ns(ratios[i] - ratios[i + 1], 270.0, 0.1)
            for i in range(3)
        )
        assert cumulative == pytest.approx(incremental)

    def test_paper_scale_example(self):
        """With a 4 KB L1 (M_L1 ~ 0.1) typical global improvements of a few
        tenths of a percent buy 10-20 ns -- one to two CPU cycles, as the
        paper reports for most of the design space."""
        budget = cumulative_breakeven_ns([0.020, 0.0155], 270.0, 0.1)
        assert 10.0 <= budget <= 20.0

    def test_needs_at_least_two_points(self):
        with pytest.raises(ValueError):
            cumulative_breakeven_ns([0.02], 270.0, 0.1)


class TestL1Scaling:
    def test_paper_factor(self):
        """Each L1 doubling multiplies the break-even times by ~1.45."""
        assert l1_scaling_factor(0.69) == pytest.approx(1.449, abs=0.01)

    def test_inverse_relationship(self):
        assert l1_scaling_factor(0.5) == pytest.approx(2.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            l1_scaling_factor(0.0)
        with pytest.raises(ValueError):
            l1_scaling_factor(1.0)
