"""The fault-injection harness: grammar, determinism, and the guarantee
that an injected corruption cannot sneak past the audit invariants."""


import pytest

from repro.audit.invariants import AuditError, audit_functional_result
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    InjectedFault,
    cell_signature,
)
from repro.sim.fast import run_functional
from repro.sim.timing import TimingSimulator


class TestGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("worker_raise:0.2,worker_hang:0.05,corrupt_result:0.1")
        assert plan.rate("worker_raise") == 0.2
        assert plan.rate("worker_hang") == 0.05
        assert plan.rate("corrupt_result") == 0.1
        assert plan.rate("worker_kill") == 0.0

    def test_spec_round_trips(self):
        plan = FaultPlan.parse("worker_raise:0.2,corrupt_result:0.1")
        assert FaultPlan.parse(plan.spec) == plan

    def test_empty_spec_is_no_plan(self):
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  ") is None
        assert FaultPlan.parse(",") is None

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan.parse("worker_explode:0.5")

    def test_missing_probability_rejected(self):
        with pytest.raises(ValueError, match="fault:probability"):
            FaultPlan.parse("worker_raise")

    def test_unparseable_probability_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            FaultPlan.parse("worker_raise:lots")

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan.parse("worker_raise:1.5")
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan.parse("worker_raise:-0.1")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_raise:0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "99")
        plan = FaultPlan.from_env()
        assert plan.rate("worker_raise") == 0.5
        assert plan.seed == 99

    def test_from_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None

    def test_from_env_bad_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_raise:0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "sometimes")
        with pytest.raises(ValueError, match="REPRO_FAULTS_SEED"):
            FaultPlan.from_env()


class TestDeterminism:
    def test_decisions_are_reproducible(self):
        plan = FaultPlan.parse("worker_raise:0.5")
        decisions = [plan.decide("worker_raise", f"sig{i}", 0) for i in range(64)]
        again = [plan.decide("worker_raise", f"sig{i}", 0) for i in range(64)]
        assert decisions == again
        # A 0.5 rate over 64 independent draws fires at least once each way.
        assert any(decisions) and not all(decisions)

    def test_decisions_vary_with_attempt(self):
        """Retries must get fresh draws, or no retry could ever succeed."""
        plan = FaultPlan.parse("worker_raise:0.5")
        outcomes = {
            plan.decide("worker_raise", "cell", attempt) for attempt in range(32)
        }
        assert outcomes == {True, False}

    def test_seed_changes_the_pattern(self):
        a = FaultPlan.parse("worker_raise:0.5", seed=1)
        b = FaultPlan.parse("worker_raise:0.5", seed=2)
        pattern_a = [a.decide("worker_raise", f"s{i}", 0) for i in range(64)]
        pattern_b = [b.decide("worker_raise", f"s{i}", 0) for i in range(64)]
        assert pattern_a != pattern_b

    def test_rate_extremes(self):
        plan = FaultPlan.parse("worker_raise:1.0,worker_hang:0.0")
        assert all(plan.decide("worker_raise", f"s{i}", 0) for i in range(16))
        assert not any(plan.decide("worker_hang", f"s{i}", 0) for i in range(16))

    def test_signature_is_scheduling_independent(self, tiny_config):
        sig = cell_signature("functional", 3, ("projection",))
        assert sig == cell_signature("functional", 3, ("projection",))
        assert sig != cell_signature("timing", 3, ("projection",))
        assert sig != cell_signature("functional", 4, ("projection",))


class TestInjection:
    def test_worker_raise_raises(self):
        plan = FaultPlan.parse("worker_raise:1.0")
        with pytest.raises(InjectedFault):
            plan.inject_before("cell", 0, in_worker=False)

    def test_no_faults_below_rate(self):
        plan = FaultPlan.parse("worker_raise:0.0,worker_hang:0.0,worker_kill:0.0")
        plan.inject_before("cell", 0, in_worker=False)  # must not raise

    def test_corruption_is_caught_by_the_audit(self, tiny_traces, tiny_config):
        """The injected corruption must violate a conservation law --
        otherwise chaos runs could 'pass' on silently poisoned grids."""
        plan = FaultPlan.parse("corrupt_result:1.0")
        trace = tiny_traces[0]
        result = run_functional(trace, tiny_config)
        corrupted = plan.corrupt_after("cell", 0, result)
        audit_functional_result(trace, result, source="test")  # clean passes
        with pytest.raises(AuditError, match="cpu-boundary"):
            audit_functional_result(trace, corrupted, source="test")

    def test_corruption_copies_instead_of_mutating(self, tiny_traces, tiny_config):
        plan = FaultPlan.parse("corrupt_result:1.0")
        result = run_functional(tiny_traces[0], tiny_config)
        reads_before = result.level_stats[0].reads
        plan.corrupt_after("cell", 0, result)
        assert result.level_stats[0].reads == reads_before

    def test_timing_corruption_perturbs_total(self, tiny_traces, tiny_config):
        plan = FaultPlan.parse("corrupt_result:1.0")
        result = TimingSimulator(tiny_config).run(tiny_traces[0])
        corrupted = plan.corrupt_after("cell", 0, result)
        assert corrupted.total_ns > result.total_ns

    def test_fault_kinds_are_exactly_the_documented_set(self):
        assert set(FAULT_KINDS) == {
            "worker_raise", "worker_hang", "worker_kill", "corrupt_result",
            # Disk faults, consumed by the atomic-write primitive in
            # repro.resilience.integrity rather than around cells.
            "torn_write", "enospc", "rename_fail", "bitflip",
        }
