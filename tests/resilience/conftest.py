"""Shared fixtures for the resilience tests.

The workloads here are deliberately tiny: these tests exercise recovery
machinery (retries, timeouts, worker deaths, journals), not simulation
fidelity, so each cell should cost milliseconds.
"""

import pytest

from repro.sim import memo
from repro.sim.config import LevelConfig, SystemConfig
from repro.trace.workload import SyntheticWorkload
from repro.units import KB


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts from an empty cache and zeroed counters."""
    memo.clear_memo_cache()
    yield
    memo.clear_memo_cache()


@pytest.fixture(scope="session")
def tiny_traces():
    """Two small single-process traces with distinct seeds."""
    return [
        SyntheticWorkload(seed=11 + t, address_base=t << 40).trace(
            6_000, name=f"tiny{t}", warmup=1_000
        )
        for t in range(2)
    ]


@pytest.fixture(scope="session")
def tiny_config():
    return SystemConfig(
        levels=(
            LevelConfig(size_bytes=2 * KB, block_bytes=16,
                        cycle_cpu_cycles=1, write_hit_cycles=2),
            LevelConfig(size_bytes=32 * KB, block_bytes=32,
                        cycle_cpu_cycles=3, write_hit_cycles=2),
        )
    )


@pytest.fixture
def config_grid(tiny_config):
    """Six configurations: three sizes x two timing variants."""
    grid = []
    for size in (2 * KB, 4 * KB, 8 * KB):
        sized = tiny_config.with_level(0, size_bytes=size)
        grid.append(sized)
        grid.append(sized.with_level(1, cycle_cpu_cycles=5))
    return grid
