"""Two processes sharing one trace-cache directory.

The workload disk cache serialises builders per entry with an advisory
lock: the loser of the race waits (up to ``REPRO_LOCK_TIMEOUT_S``) and
then opens the winner's store instead of rebuilding the same bytes.
These tests drive that protocol with real subprocesses -- contention
against a live holder, simultaneous builders, and takeover of a lock
whose holder was SIGKILLed.
"""

import hashlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.integrity import (
    AdvisoryLock,
    holder_record,
    is_tmp_artifact,
    probe_lock,
)
from repro.trace.store import STORE_SUFFIX, TraceStore

SRC = str(Path(__file__).resolve().parents[2] / "src")

RECORDS = 3000

#: Child that builds a one-trace suite against the shared cache dir.
BUILD_CHILD = """
import sys
from repro.experiments.workloads import paper_trace_suite

paper_trace_suite(records=int(sys.argv[1]), count=1)
print("built")
"""

#: Child that grabs the entry lock and then sits on it until killed.
HOLD_CHILD = """
import pathlib
import sys
import time

from repro.resilience.integrity import AdvisoryLock

AdvisoryLock(pathlib.Path(sys.argv[1]), name="test-victim").acquire()
pathlib.Path(sys.argv[2]).write_text("holding")
time.sleep(120)
"""


def entry_paths(cache: Path, records: int = RECORDS) -> tuple:
    """(store path, lock path) for the first suite entry, as the cache
    derives them (count=1 means the entry is the vms0 trace)."""
    digest = hashlib.sha256(f"v1-{records}-1-vms0".encode()).hexdigest()[:16]
    store = cache / f"trace-{digest}{STORE_SUFFIX}"
    return store, store.with_name(store.name + ".lock")


def suite_env(cache: Path, timeout_s: float) -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC
    env["REPRO_TRACE_CACHE"] = str(cache)
    env["REPRO_LOCK_TIMEOUT_S"] = str(timeout_s)
    env.pop("REPRO_FAULTS", None)
    return env


def build_in_child(cache: Path, timeout_s: float) -> "subprocess.Popen":
    return subprocess.Popen(
        [sys.executable, "-c", BUILD_CHILD, str(RECORDS)],
        env=suite_env(cache, timeout_s),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


class TestContention:
    def test_fail_fast_loser_names_the_live_holder(self, tmp_path):
        """While another process holds the entry lock, a builder with a
        tiny timeout fails with the holder's identity -- proof the lock
        actually excludes across processes."""
        cache = tmp_path / "cache"
        cache.mkdir()
        _, lock_path = entry_paths(cache)
        holder = AdvisoryLock(lock_path, name="test-winner").acquire()
        try:
            child = build_in_child(cache, timeout_s=0.3)
            _, stderr = child.communicate(timeout=60)
        finally:
            holder.release()
        assert child.returncode != 0
        assert b"LockHeldError" in stderr
        assert b"advisory lock held" in stderr
        assert str(os.getpid()).encode() in stderr  # names the holder

    def test_waiting_loser_opens_the_winners_store(self, tmp_path):
        """With a generous timeout the loser rides out the contention and
        ends up reading the winner's store, not rebuilding it."""
        cache = tmp_path / "cache"
        cache.mkdir()
        store_path, lock_path = entry_paths(cache)

        # The "winner": a child builds the entry, populating the cache.
        winner = build_in_child(cache, timeout_s=30)
        out, err = winner.communicate(timeout=120)
        assert winner.returncode == 0, err.decode()
        assert store_path.exists()
        fingerprint = store_path.read_bytes()

        # Now hold the entry lock ourselves and start the loser: it must
        # still be running (waiting) when we release, then finish by
        # opening the existing store -- whose bytes never change.
        holder = AdvisoryLock(lock_path, name="test-winner").acquire()
        child = build_in_child(cache, timeout_s=30)
        time.sleep(1.5)
        assert child.poll() is None, "loser should be waiting on the lock"
        holder.release()
        out, err = child.communicate(timeout=120)
        assert child.returncode == 0, err.decode()
        assert store_path.read_bytes() == fingerprint

    def test_simultaneous_builders_produce_one_valid_store(self, tmp_path):
        """Two builders racing from scratch: both succeed, the cache ends
        up with exactly one verified store and no tmp residue."""
        cache = tmp_path / "cache"
        cache.mkdir()
        store_path, _ = entry_paths(cache)
        children = [build_in_child(cache, timeout_s=60) for _ in range(2)]
        for child in children:
            _, err = child.communicate(timeout=120)
            assert child.returncode == 0, err.decode()
        stores = list(cache.glob(f"*{STORE_SUFFIX}"))
        assert stores == [store_path]
        TraceStore.open(store_path, verify=True)  # winner's bytes are sound
        assert not [p for p in cache.iterdir() if is_tmp_artifact(p)]


class TestStaleTakeover:
    def _kill_holder(self, tmp_path, lock_path) -> int:
        """Start a child holding ``lock_path``, SIGKILL it, return its pid."""
        sentinel = tmp_path / "holding"
        child = subprocess.Popen(
            [sys.executable, "-c", HOLD_CHILD, str(lock_path), str(sentinel)],
            env={**os.environ, "PYTHONPATH": SRC},
        )
        deadline = time.monotonic() + 30
        while not sentinel.exists():
            assert child.poll() is None, "holder child died before locking"
            assert time.monotonic() < deadline, "holder child never locked"
            time.sleep(0.05)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
        return child.pid

    def test_killed_holder_leaves_a_stale_probe(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        _, lock_path = entry_paths(cache)
        pid = self._kill_holder(tmp_path, lock_path)
        # The kernel dropped the flock with the process; the record it
        # never got to blank is what marks the lock stale.
        assert probe_lock(lock_path) == "stale"
        holder = holder_record(lock_path)
        assert holder["pid"] == pid
        assert holder["name"] == "test-victim"

    def test_takeover_needs_no_cleanup(self, tmp_path):
        """A new holder acquires a SIGKILLed holder's lock immediately --
        fail-fast timeout, no doctor intervention."""
        cache = tmp_path / "cache"
        cache.mkdir()
        _, lock_path = entry_paths(cache)
        self._kill_holder(tmp_path, lock_path)
        lock = AdvisoryLock(lock_path, name="successor")
        lock.acquire(timeout_s=0.0)  # would raise LockHeldError if wedged
        assert holder_record(lock_path)["pid"] == os.getpid()
        lock.release()
        assert probe_lock(lock_path) == "free"

    def test_suite_build_rides_over_a_stale_lock(self, tmp_path):
        """The cache itself takes over a dead holder's entry lock and
        completes the build."""
        cache = tmp_path / "cache"
        cache.mkdir()
        store_path, lock_path = entry_paths(cache)
        self._kill_holder(tmp_path, lock_path)
        child = build_in_child(cache, timeout_s=30)
        _, err = child.communicate(timeout=120)
        assert child.returncode == 0, err.decode()
        TraceStore.open(store_path, verify=True)


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
