"""No sweep -- completed, failed, or interrupted -- may leak worker
processes.  Regression tests for the KeyboardInterrupt pool leak."""

import multiprocessing

import pytest

from repro.core.sweep import sweep_functional
from repro.resilience import executor
from repro.resilience.executor import Cell
from repro.resilience.faults import cell_signature
from repro.resilience.journal import journaling
from repro.resilience.policy import RetryPolicy
from repro.sim import memo
from repro.sim.fast import run_functional


def _live_children():
    """Child processes still alive (reaps finished ones first)."""
    children = multiprocessing.active_children()  # joins the finished
    return [p for p in children if p.is_alive()]


def _cells(traces, configs):
    cells = []
    for j in range(len(traces)):
        for config in configs:
            cells.append(
                Cell(
                    len(cells), j, config,
                    cell_signature(
                        "functional", j, memo.functional_projection(config)
                    ),
                )
            )
    return cells


def _compute(traces, cell):
    return run_functional(traces[cell.trace_index], cell.config)


class TestNoOrphans:
    def test_after_a_clean_pooled_run(self, tiny_traces, config_grid):
        cells = _cells(tiny_traces, config_grid[:2])
        outcome = executor.run_pooled(
            "functional", _compute, [[c] for c in cells], tiny_traces,
            workers=2, policy=RetryPolicy(),
        )
        assert outcome is not None
        assert _live_children() == []

    def test_after_a_worker_exception(self, tiny_traces, config_grid):
        cells = _cells(tiny_traces, config_grid[:2])

        def boom(traces, cell):
            raise RuntimeError("cell exploded")

        outcome = executor.run_pooled(
            "functional", boom, [[c] for c in cells], tiny_traces,
            workers=2, policy=RetryPolicy(max_attempts=1),
        )
        assert outcome is not None
        assert len(outcome.failures) == len(cells)
        assert _live_children() == []

    def test_keyboard_interrupt_mid_sweep_terminates_workers(
        self, tmp_path, tiny_traces, config_grid
    ):
        """Ctrl-C while results are streaming in must tear the pool down
        (the historical leak: mp.Pool was never terminated/joined)."""
        journal = tmp_path / "interrupted.jsonl"
        interrupted_after = 2
        delivered = []

        def interrupting_on_result(cell, result):
            delivered.append(cell.cell_id)
            if len(delivered) == interrupted_after:
                raise KeyboardInterrupt()

        # Every other grid entry: distinct functional projections, so
        # every journaled cell has a distinct key.
        cells = _cells(tiny_traces, config_grid[::2])
        with journaling(journal) as active:
            with pytest.raises(KeyboardInterrupt):
                executor.run_pooled(
                    "functional", _compute, [[c] for c in cells], tiny_traces,
                    workers=2, policy=RetryPolicy(),
                    on_result=lambda cell, result: (
                        active.record_cell(
                            "functional",
                            memo.memo_key(
                                tiny_traces[cell.trace_index], cell.config
                            ),
                            result,
                        ),
                        interrupting_on_result(cell, result),
                    ),
                )
            assert _live_children() == []
            # The cells delivered before the interrupt are durably
            # journaled -- that is what makes the interrupt resumable.
            assert active.restorable_cells >= interrupted_after

    def test_interrupted_sweep_resumes(self, tmp_path, tiny_traces, config_grid):
        """End to end: interrupt a journaled sweep, resume it, and get
        the exact grid an uninterrupted run produces."""
        journal = tmp_path / "resume.jsonl"
        seen = []

        real_store = memo.store

        def interrupting_store(key, result):
            real_store(key, result)
            seen.append(key)
            if len(seen) == 2:
                raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            with journaling(journal):
                memo.store = interrupting_store
                try:
                    sweep_functional(tiny_traces, config_grid, workers=0)
                finally:
                    memo.store = real_store
        assert _live_children() == []

        memo.clear_memo_cache()
        with journaling(journal, resume=True):
            grid = sweep_functional(tiny_traces, config_grid, workers=0)
        for i, config in enumerate(config_grid):
            for j, trace in enumerate(tiny_traces):
                expected = run_functional(trace, config)
                assert grid[i][j].cpu_reads == expected.cpu_reads
                assert (
                    grid[i][j].level_stats[0].read_misses
                    == expected.level_stats[0].read_misses
                )
