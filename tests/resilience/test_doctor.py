"""``mlcache doctor``: scanning artifact trees, classifying damage,
repairing with ``--fix``."""

import json

import pytest

from repro.resilience.doctor import main, scan
from repro.resilience.integrity import AdvisoryLock, boot_id
from repro.resilience.journal import _payload_checksum
from repro.trace.store import TraceStore

DEAD_PID = 2 ** 22 + 1  # beyond pid_max on Linux: never a live process


def _journal_text(live_payloads, torn_lines=0):
    lines = [
        json.dumps({"t": "header", "schema": 1, "name": "t", "pid": 1}) + "\n"
    ]
    for index, payload in enumerate(live_payloads):
        text = json.dumps(payload, sort_keys=True)
        lines.append(
            json.dumps(
                {
                    "t": "cell",
                    "kind": "functional",
                    "key": f"cell-{index}",
                    "trace": "t",
                    "sum": _payload_checksum(text),
                    "payload": payload,
                },
                sort_keys=True,
            )
            + "\n"
        )
    lines.extend('{"t": "cell", "kind": "functional", "to\n' * torn_lines)
    return "".join(lines)


@pytest.fixture
def wreckage(tmp_path, tiny_traces):
    """An artifact tree with one of every kind of damage (and some
    healthy artifacts that must be left alone)."""
    root = tmp_path / "results"
    root.mkdir()

    paths = {}
    paths["healthy_store"] = root / "good.mlt"
    TraceStore.save(tiny_traces[0], paths["healthy_store"])

    paths["corrupt_store"] = root / "rotten.mlt"
    TraceStore.save(tiny_traces[0], paths["corrupt_store"])
    blob = bytearray(paths["corrupt_store"].read_bytes())
    blob[-9] ^= 0x40  # one bit in the addresses segment
    paths["corrupt_store"].write_bytes(bytes(blob))

    paths["truncated_store"] = root / "torn.mlt"
    paths["truncated_store"].write_bytes(b"MLCT")

    paths["healthy_json"] = root / "summary.json"
    paths["healthy_json"].write_text('{"ok": true}')

    paths["corrupt_json"] = root / "manifest.json"
    paths["corrupt_json"].write_text('{"experiment": "F5-1", "resu')

    paths["orphan_tmp"] = root / "save.mlt.tmp-4242-0"
    paths["orphan_tmp"].write_bytes(b"half a store")

    paths["stale_lock"] = root / "dead.lock"
    paths["stale_lock"].write_text(
        json.dumps({"pid": DEAD_PID, "boot_id": boot_id(), "name": "ghost"})
    )

    paths["released_lock"] = root / "clean.lock"
    paths["released_lock"].write_text("")  # blank record: clean release

    paths["bloated_journal"] = root / "sweep.journal.jsonl"
    paths["bloated_journal"].write_text(
        _journal_text([{"x": 1}, {"x": 2}], torn_lines=3)
    )

    paths["healthy_telemetry"] = root / "good.telemetry.jsonl"
    paths["healthy_telemetry"].write_text(
        '{"k":"meta","schema":1,"pid":1}\n'
        '{"k":"span","id":"1:1","parent":null,"pid":1,"name":"sweep.plan",'
        '"t0":10,"t1":20}\n'
    )

    paths["torn_telemetry"] = root / "killed.telemetry.jsonl"
    paths["torn_telemetry"].write_text(
        '{"k":"meta","schema":1,"pid":1}\n'
        '{"k":"span","id":"1:1","parent":null,"pid":1,"name":"sweep.plan",'
        '"t0":10,"t1":20}\n'
        '{"k":"span","id":"1:2","parent":null,"pid":1,"name":"po'
    )

    # Already-quarantined damage is never re-reported.
    jail = root / "quarantine"
    jail.mkdir()
    (jail / "old.mlt.99-0").write_bytes(b"previously quarantined garbage")

    return root, paths


class TestScan:
    def test_healthy_tree_scans_clean(self, tmp_path, tiny_traces):
        root = tmp_path / "results"
        root.mkdir()
        TraceStore.save(tiny_traces[0], root / "good.mlt")
        (root / "summary.json").write_text('{"ok": true}')
        (root / "clean.lock").write_text("")
        assert scan([root]) == []

    def test_classifies_every_kind_of_damage(self, wreckage):
        root, paths = wreckage
        by_path = {f.path: f for f in scan([root])}
        assert by_path[str(paths["corrupt_store"])].kind == "corrupt_store"
        assert by_path[str(paths["truncated_store"])].kind == "corrupt_store"
        assert by_path[str(paths["corrupt_json"])].kind == "corrupt_json"
        assert by_path[str(paths["orphan_tmp"])].kind == "orphan_tmp"
        assert by_path[str(paths["stale_lock"])].kind == "stale_lock"
        assert by_path[str(paths["bloated_journal"])].kind == "journal_bloat"
        assert by_path[str(paths["torn_telemetry"])].kind == "telemetry_torn"
        # Healthy artifacts, clean lock residue and the quarantine
        # directory produce no findings.
        assert len(by_path) == 7

    def test_corrupt_store_detail_names_the_damage(self, wreckage):
        root, paths = wreckage
        (finding,) = [
            f for f in scan([root]) if f.path == str(paths["corrupt_store"])
        ]
        assert "addresses" in finding.detail  # the segment that rotted

    def test_held_lock_is_informational(self, tmp_path):
        root = tmp_path / "busy"
        root.mkdir()
        lock = AdvisoryLock(root / "sweep.lock", name="live-sweep").acquire()
        try:
            (finding,) = scan([root])
            assert finding.kind == "held_lock"
            assert not finding.fixable
            assert "live-sweep" in finding.detail
            # A live sweep is not ill health: exit 0, nothing to fix.
            assert main([str(root)]) == 0
        finally:
            lock.release()

    def test_missing_root_is_not_an_error(self, tmp_path):
        assert scan([tmp_path / "nope"]) == []


class TestFix:
    def test_scan_only_reports_and_exits_nonzero(self, wreckage, capsys):
        root, _ = wreckage
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "7 finding(s), 7 unfixed" in out
        assert "re-run with --fix" in out

    def test_fix_repairs_the_whole_tree(self, wreckage, capsys):
        root, paths = wreckage
        assert main([str(root), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "[quarantined] corrupt_store" in out
        assert "[compacted] journal_bloat" in out
        assert "[removed] orphan_tmp" in out
        assert "[removed] stale_lock" in out
        assert "[trimmed] telemetry_torn" in out

        # Corrupt artifacts were moved, not deleted: the bytes survive in
        # quarantine with a reason sidecar, and the paths are free.
        assert not paths["corrupt_store"].exists()
        jailed = [
            p for p in (root / "quarantine").iterdir()
            if p.name.startswith("rotten.mlt.")
            and not p.name.endswith(".reason.json")
        ]
        assert len(jailed) == 1
        reason = json.loads(
            jailed[0].with_name(jailed[0].name + ".reason.json").read_text()
        )
        assert reason["artifact"] == str(paths["corrupt_store"])

        # Crash residue was deleted; the journal kept its live cells.
        assert not paths["orphan_tmp"].exists()
        assert not paths["stale_lock"].exists()
        text = paths["bloated_journal"].read_text()
        assert text.count('"t": "cell"') == 2
        assert "torn" not in text

        # The torn telemetry sink kept exactly its clean prefix.
        tele = paths["torn_telemetry"].read_text()
        assert tele.endswith('"t1":20}\n')
        assert tele.count("\n") == 2

        # Healthy artifacts are untouched.
        assert paths["healthy_store"].exists()
        assert paths["healthy_json"].read_text() == '{"ok": true}'
        assert paths["healthy_telemetry"].read_text().count("\n") == 2

    def test_fixed_tree_rescans_clean(self, wreckage):
        root, _ = wreckage
        main([str(root), "--fix"])
        assert scan([root]) == []

    def test_json_output(self, wreckage, capsys):
        root, _ = wreckage
        assert main([str(root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["roots"] == [str(root)]
        assert report["unfixed"] == 7
        kinds = sorted(f["kind"] for f in report["findings"])
        assert kinds == [
            "corrupt_json", "corrupt_store", "corrupt_store",
            "journal_bloat", "orphan_tmp", "stale_lock", "telemetry_torn",
        ]
