"""Pin the ``sweep_workers`` env-parsing domain and ``_chunked`` shape.

These behaviours were previously implicit; this module makes the
contract explicit so a future refactor cannot silently change how a
deployment's ``REPRO_SWEEP_WORKERS`` setting is interpreted.
"""

import pytest

from repro.core.sweep import MAX_WORKERS, WORKERS_ENV, _chunked, sweep_workers


class TestSweepWorkersEnv:
    def test_unset_defaults_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert sweep_workers() == max(1, min(os.cpu_count() or 1, MAX_WORKERS))

    def test_zero_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert sweep_workers() == 1

    def test_one_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert sweep_workers() == 1

    def test_plain_value_respected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert sweep_workers() == 6

    def test_surrounding_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  5 ")
        assert sweep_workers() == 5

    def test_whitespace_only_is_unset(self, monkeypatch):
        """A blank setting means 'no setting', not an error."""
        import os

        monkeypatch.setenv(WORKERS_ENV, "   ")
        assert sweep_workers() == max(1, min(os.cpu_count() or 1, MAX_WORKERS))

    def test_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError, match="non-negative"):
            sweep_workers()

    def test_huge_value_clamped(self, monkeypatch):
        """A fat-fingered worker count must not fork-bomb the host."""
        monkeypatch.setenv(WORKERS_ENV, "10000")
        assert sweep_workers() == MAX_WORKERS

    def test_non_numeric_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            sweep_workers()

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert sweep_workers(3) == 3

    def test_explicit_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            sweep_workers(-1)

    def test_explicit_zero_means_serial(self):
        assert sweep_workers(0) == 1

    def test_explicit_huge_clamped(self):
        assert sweep_workers(10**6) == MAX_WORKERS


class TestChunked:
    def test_preserves_order_and_content(self):
        jobs = list(range(23))
        chunks = _chunked(jobs, 5)
        assert [x for chunk in chunks for x in chunk] == jobs

    def test_balanced_sizes(self):
        """No two chunks may differ by more than one element."""
        for n in (1, 2, 7, 23, 100):
            for k in (1, 2, 5, 16):
                sizes = [len(c) for c in _chunked(list(range(n)), k)]
                assert max(sizes) - min(sizes) <= 1
                assert sum(sizes) == n

    def test_never_more_chunks_than_jobs(self):
        assert len(_chunked([1, 2], 10)) == 2

    def test_never_empty_chunks(self):
        for n in (1, 3, 10):
            for k in (1, 2, 5, 20):
                assert all(_chunked(list(range(n)), k))

    def test_single_chunk(self):
        jobs = list(range(9))
        assert _chunked(jobs, 1) == [jobs]

    def test_zero_chunks_clamped_to_one(self):
        jobs = [1, 2, 3]
        assert _chunked(jobs, 0) == [jobs]
