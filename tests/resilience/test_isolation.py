"""Per-cell fault isolation: retry-then-succeed, retry exhaustion into a
partial grid, timeout-then-requeue, and pool re-creation after a worker
death.

Executor-level tests drive :mod:`repro.resilience.executor` directly
with marker-file compute functions (first attempt fails, later attempts
see the marker on disk and succeed -- deterministic across worker
processes).  Sweep-level tests go through ``sweep_functional`` with the
seeded fault-injection harness.
"""

import os
import signal
import time

import pytest

from repro.audit import manifest as run_manifest
from repro.core.sweep import sweep_functional
from repro.resilience import executor
from repro.resilience.executor import Cell
from repro.resilience.faults import _uniform_draw, cell_signature
from repro.resilience.policy import FailureReport, RetryPolicy, SweepFailure
from repro.sim import memo
from repro.sim.fast import run_functional


def make_cells(traces, configs):
    cells = []
    for j in range(len(traces)):
        for config in configs:
            key = memo.functional_projection(config)
            cells.append(
                Cell(len(cells), j, config, cell_signature("functional", j, key))
            )
    return cells


def marker_compute(marker_dir, failure):
    """A compute whose first attempt per cell fails via ``failure`` and
    whose later attempts succeed (marker files survive worker deaths)."""

    def compute(traces, cell):
        marker = marker_dir / f"cell{cell.cell_id}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return run_functional(traces[cell.trace_index], cell.config)
        failure()
        return run_functional(traces[cell.trace_index], cell.config)

    return compute


def assert_complete(outcome, cells, traces):
    assert not outcome.failures
    assert sorted(outcome.results) == [cell.cell_id for cell in cells]
    for cell in cells:
        expected = run_functional(traces[cell.trace_index], cell.config)
        assert outcome.results[cell.cell_id].cpu_reads == expected.cpu_reads
        assert (
            outcome.results[cell.cell_id].level_stats[0].read_misses
            == expected.level_stats[0].read_misses
        )


def find_flaky_seed(signatures, rate=0.5, max_attempts=3):
    """A seed where every cell succeeds within the attempt budget and at
    least one cell fails its first attempt (pure draws: no trial runs)."""
    for seed in range(1000):
        first_failures = 0
        for signature in signatures:
            attempts = [
                _uniform_draw(seed, "worker_raise", signature, a) < rate
                for a in range(max_attempts)
            ]
            if all(attempts):
                break  # this cell would exhaust its budget
            if attempts[0]:
                first_failures += 1
        else:
            if first_failures:
                return seed
    raise AssertionError("no suitable seed in range")


class TestRetryThenSucceed:
    def test_serial(self, tmp_path, tiny_traces, config_grid):
        cells = make_cells(tiny_traces, config_grid[:2])

        def boom():
            raise RuntimeError("flaky once")

        outcome = executor.run_serial(
            "functional",
            marker_compute(tmp_path, boom),
            cells,
            tiny_traces,
            RetryPolicy(max_attempts=3),
        )
        assert_complete(outcome, cells, tiny_traces)
        assert outcome.retries == len(cells)

    def test_pooled(self, tmp_path, tiny_traces, config_grid):
        cells = make_cells(tiny_traces, config_grid[:2])

        def boom():
            raise RuntimeError("flaky once")

        outcome = executor.run_pooled(
            "functional",
            marker_compute(tmp_path, boom),
            [[cell] for cell in cells],
            tiny_traces,
            workers=2,
            policy=RetryPolicy(max_attempts=3),
        )
        assert outcome is not None
        assert_complete(outcome, cells, tiny_traces)
        assert outcome.retries == len(cells)

    def test_seeded_faults_through_the_sweep(
        self, monkeypatch, tiny_traces, config_grid
    ):
        signatures = [
            cell_signature("functional", j, memo.functional_projection(config))
            for j in range(len(tiny_traces))
            for config in config_grid
        ]
        seed = find_flaky_seed(signatures)
        monkeypatch.setenv("REPRO_FAULTS", "worker_raise:0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", str(seed))
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "2")
        with run_manifest.recording("flaky") as recorder:
            grid = sweep_functional(tiny_traces, config_grid, workers=0)
        (note,) = recorder.sweeps
        assert note.retries > 0
        assert note.failed == 0
        for i, config in enumerate(config_grid):
            for j, trace in enumerate(tiny_traces):
                assert grid[i][j].cpu_reads == run_functional(trace, config).cpu_reads


class TestRetryExhaustion:
    def test_partial_grid_with_failure_reports(
        self, monkeypatch, tiny_traces, config_grid
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_raise:1.0")
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "1")
        failures = []
        with run_manifest.recording("exhausted") as recorder:
            grid = sweep_functional(
                tiny_traces, config_grid, workers=0,
                on_failure="partial", failures=failures,
            )
        # Every distinct cell failed permanently; the grid is all-None.
        assert all(cell is None for row in grid for cell in row)
        assert failures
        for report in failures:
            assert isinstance(report, FailureReport)
            assert report.reason == "exception"
            assert report.attempts == 2
            assert report.exception_type == "InjectedFault"
            assert report.trace_name in {t.name for t in tiny_traces}
            assert report.config_text
        # The manifest carries the same structured reports.
        (note,) = recorder.sweeps
        assert note.failed == len(failures)
        rendered = recorder.as_dict()["failures"]
        assert len(rendered) == len(failures)
        assert rendered[0]["reason"] == "exception"

    def test_raise_mode_re_raises_the_original_exception(
        self, monkeypatch, tiny_traces, config_grid
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_raise:1.0")
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "0")
        from repro.resilience.faults import InjectedFault

        with pytest.raises(InjectedFault, match="worker_raise injected"):
            sweep_functional(tiny_traces, config_grid, workers=0)

    def test_sweep_failure_lists_every_report(self):
        reports = [
            FailureReport(
                kind="functional", reason="timeout", trace_index=0,
                trace_name="t", config_text="c", attempts=3,
                exception_type="CellTimeout", message="budget exceeded",
            )
        ]
        err = SweepFailure(reports)
        assert err.failures == reports
        assert "timeout" in str(err)
        assert "3 attempt(s)" in str(err)


class TestCorruptionRejection:
    def test_corrupt_results_are_retried_not_returned(
        self, monkeypatch, tiny_traces, config_grid
    ):
        """With the audit on, an injected corruption becomes an
        invalid-result failure (and a retry), never a grid cell."""
        monkeypatch.setenv("REPRO_AUDIT", "1")
        monkeypatch.setenv("REPRO_FAULTS", "corrupt_result:1.0")
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "1")
        failures = []
        grid = sweep_functional(
            tiny_traces, config_grid[:2], workers=0,
            on_failure="partial", failures=failures,
        )
        assert all(cell is None for row in grid for cell in row)
        assert failures
        assert all(report.reason == "invalid-result" for report in failures)
        assert all("cpu-boundary" in report.message for report in failures)


class TestTimeoutThenRequeue:
    def test_hung_cell_is_killed_and_retried(self, tmp_path, tiny_traces, config_grid):
        cells = make_cells(tiny_traces, config_grid[:2])

        def hang():
            time.sleep(30.0)

        outcome = executor.run_pooled(
            "functional",
            marker_compute(tmp_path, hang),
            [[cell] for cell in cells],
            tiny_traces,
            workers=2,
            policy=RetryPolicy(max_attempts=3, cell_timeout_s=0.5),
        )
        assert outcome is not None
        assert_complete(outcome, cells, tiny_traces)
        assert outcome.timeouts >= 1
        assert outcome.pool_restarts >= 1

    def test_timeout_env_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "2.5")
        policy = RetryPolicy.from_env()
        assert policy.cell_timeout_s == 2.5

    def test_timeout_env_rejects_nonsense(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SWEEP_TIMEOUT"):
            RetryPolicy.from_env()
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "-1")
        with pytest.raises(ValueError, match="positive"):
            RetryPolicy.from_env()

    def test_permanent_timeout_becomes_a_report(self, tmp_path, tiny_traces, config_grid):
        cells = make_cells(tiny_traces, config_grid[:1])[:1]

        def compute(traces, cell):
            time.sleep(30.0)

        outcome = executor.run_pooled(
            "functional", compute, [[cell] for cell in cells], tiny_traces,
            workers=1, policy=RetryPolicy(max_attempts=2, cell_timeout_s=0.4),
        )
        assert outcome is not None
        assert not outcome.results
        (report,) = outcome.failures
        assert report.reason == "timeout"
        assert report.attempts == 2
        assert "wall-clock budget" in report.message


class TestPoolDeathRestart:
    def test_killed_worker_is_replaced_and_the_cell_retried(
        self, tmp_path, tiny_traces, config_grid
    ):
        cells = make_cells(tiny_traces, config_grid[:2])

        def die():
            os.kill(os.getpid(), signal.SIGKILL)

        outcome = executor.run_pooled(
            "functional",
            marker_compute(tmp_path, die),
            [[cell] for cell in cells],
            tiny_traces,
            workers=2,
            policy=RetryPolicy(max_attempts=3),
        )
        assert outcome is not None
        assert_complete(outcome, cells, tiny_traces)
        assert outcome.pool_restarts >= 1

    def test_chunk_neighbours_keep_their_retry_budget(
        self, tmp_path, tiny_traces, config_grid
    ):
        """A dead multi-cell chunk is split and re-run cell by cell at the
        same attempt: only the poisoned cell pays for the retry."""
        cells = make_cells(tiny_traces, config_grid[:2])
        poisoned = cells[0].cell_id

        def compute(traces, cell):
            marker = tmp_path / f"cell{cell.cell_id}"
            if cell.cell_id == poisoned and not marker.exists():
                marker.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return run_functional(traces[cell.trace_index], cell.config)

        outcome = executor.run_pooled(
            "functional", compute, [cells], tiny_traces,
            workers=1, policy=RetryPolicy(max_attempts=2),
        )
        assert outcome is not None
        assert_complete(outcome, cells, tiny_traces)

    def test_worker_death_report_when_budget_exhausted(
        self, tiny_traces, config_grid
    ):
        cells = make_cells(tiny_traces, config_grid[:1])[:1]

        def compute(traces, cell):
            os.kill(os.getpid(), signal.SIGKILL)

        outcome = executor.run_pooled(
            "functional", compute, [[cell] for cell in cells], tiny_traces,
            workers=1, policy=RetryPolicy(max_attempts=2),
        )
        assert outcome is not None
        (report,) = outcome.failures
        assert report.reason == "worker-death"
        assert report.exception_type == "WorkerDied"
        assert outcome.pool_restarts >= 2


class TestWorkerMemoFold:
    def test_pooled_sweep_folds_worker_counters(
        self, monkeypatch, tiny_traces, config_grid
    ):
        """Misses counted inside worker processes must surface in the
        parent's MemoStats and in the manifest's hit ratio."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with run_manifest.recording("pooled") as recorder:
            sweep_functional(tiny_traces, config_grid, workers=2)
        (note,) = recorder.sweeps
        rendered = recorder.as_dict()["memo"]
        distinct = 3 * len(tiny_traces)  # three sizes, timing variants dedup
        cells = len(config_grid) * len(tiny_traces)
        if note.pooled:
            assert rendered["worker_folded"]["misses"] == distinct
        else:  # pool could not be created on this host; serial fallback
            assert rendered["worker_folded"]["misses"] == 0
        # Either way the totals balance: every simulation was a miss,
        # every grid cell a hit.
        assert rendered["misses"] == distinct
        assert rendered["hits"] == cells
        assert rendered["hit_ratio"] == pytest.approx(
            cells / (cells + distinct)
        )
