"""Zero-copy trace handoff between the sweep executor and its workers.

Workers receive :class:`~repro.trace.store.TraceHandle` references --
store paths and shared-memory segment names -- instead of inheriting the
trace arrays through ``Process`` args.  These tests pin the executor
integration: correct results through both handle kinds, respawned
workers re-resolving handles, segment hygiene after the pool closes, and
start-method selection (including a spawn smoke test, which the old
inherit-the-arrays handoff could not survive).
"""

import os
import signal
from pathlib import Path

import pytest

from repro.resilience import executor
from repro.resilience.executor import Cell, _pool_context
from repro.resilience.faults import cell_signature
from repro.resilience.policy import RetryPolicy
from repro.sim import memo
from repro.sim.fast import run_functional
from repro.trace.store import TraceStore


def _compute_functional(traces, cell):
    """Module-level compute: picklable, so spawn workers can import it."""
    return run_functional(traces[cell.trace_index], cell.config)


def make_cells(traces, configs):
    cells = []
    for j in range(len(traces)):
        for config in configs:
            key = memo.functional_projection(config)
            cells.append(
                Cell(len(cells), j, config, cell_signature("functional", j, key))
            )
    return cells


def shm_segments():
    """Names of live POSIX shared-memory segments (Linux)."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {entry.name for entry in root.iterdir() if entry.name.startswith("psm_")}


def assert_counts_match(outcome, cells, traces):
    assert not outcome.failures
    assert sorted(outcome.results) == [cell.cell_id for cell in cells]
    for cell in cells:
        expected = run_functional(traces[cell.trace_index], cell.config)
        got = outcome.results[cell.cell_id]
        assert got.cpu_reads == expected.cpu_reads
        assert got.memory_reads == expected.memory_reads
        assert (
            got.level_stats[0].read_misses
            == expected.level_stats[0].read_misses
        )


class TestPooledHandoff:
    def test_heap_traces_roundtrip_through_shared_memory(
        self, tiny_traces, config_grid
    ):
        cells = make_cells(tiny_traces, config_grid[:2])
        before = shm_segments()
        outcome = executor.run_pooled(
            "functional", _compute_functional, [cells], tiny_traces,
            workers=2, policy=RetryPolicy(max_attempts=2),
        )
        assert outcome is not None
        assert_counts_match(outcome, cells, tiny_traces)
        # The lease released its segments when the pool closed.
        assert shm_segments() <= before

    def test_store_backed_traces_ship_as_paths(
        self, tiny_traces, config_grid, tmp_path
    ):
        loaded = []
        for index, trace in enumerate(tiny_traces):
            TraceStore.save(trace, tmp_path / f"t{index}.mlt")
            loaded.append(TraceStore.open(tmp_path / f"t{index}.mlt").as_trace())
        cells = make_cells(loaded, config_grid[:2])
        before = shm_segments()
        outcome = executor.run_pooled(
            "functional", _compute_functional, [cells], loaded,
            workers=2, policy=RetryPolicy(max_attempts=2),
        )
        assert outcome is not None
        assert_counts_match(outcome, cells, tiny_traces)
        # Store handles need no shared memory at all.
        assert shm_segments() <= before

    def test_respawned_worker_re_resolves_handles(
        self, tiny_traces, config_grid, tmp_path
    ):
        """A worker killed mid-job is replaced; the replacement gets the
        same handles and must produce the same counts."""
        cells = make_cells(tiny_traces, config_grid[:1])

        def compute(traces, cell):
            marker = tmp_path / f"cell{cell.cell_id}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except FileExistsError:
                return run_functional(traces[cell.trace_index], cell.config)
            os.kill(os.getpid(), signal.SIGKILL)

        outcome = executor.run_pooled(
            "functional", compute, [[cell] for cell in cells], tiny_traces,
            workers=1, policy=RetryPolicy(max_attempts=3),
        )
        assert outcome is not None
        assert outcome.pool_restarts >= 1
        assert_counts_match(outcome, cells, tiny_traces)

    def test_spawn_context_smoke(self, tiny_traces, config_grid, monkeypatch):
        """The handle handoff makes the pool start-method-agnostic: the
        same sweep runs under ``spawn``, where nothing is inherited."""
        monkeypatch.setenv("REPRO_SWEEP_CONTEXT", "spawn")
        cells = make_cells(tiny_traces[:1], config_grid[:2])
        outcome = executor.run_pooled(
            "functional", _compute_functional, [cells], tiny_traces[:1],
            workers=1, policy=RetryPolicy(max_attempts=2),
        )
        assert outcome is not None
        assert_counts_match(outcome, cells, tiny_traces[:1])


class TestPoolContext:
    def test_default_prefers_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CONTEXT", raising=False)
        assert _pool_context().get_start_method() == "fork"

    @pytest.mark.parametrize("method", ["fork", "spawn", "forkserver"])
    def test_env_knob_selects_the_method(self, monkeypatch, method):
        monkeypatch.setenv("REPRO_SWEEP_CONTEXT", method)
        assert _pool_context().get_start_method() == method

    def test_invalid_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CONTEXT", "teleport")
        with pytest.raises(ValueError, match="REPRO_SWEEP_CONTEXT"):
            _pool_context()
