"""The durable artifact layer: atomic writes, disk-fault injection,
quarantine, and the advisory-lock primitives (single-process API; the
cross-process behaviour lives in test_locking.py)."""

import errno
import json
import os

import pytest

from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.integrity import (
    NO_FAULTS,
    AdvisoryLock,
    LockHeldError,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    boot_id,
    holder_is_stale,
    holder_record,
    is_tmp_artifact,
    probe_lock,
    quarantine,
)


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        atomic_write_text(path, "résumé")
        assert path.read_text(encoding="utf-8") == "résumé"

    def test_no_tmp_residue_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"x" * 1000)
        assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "a.bin"
        atomic_write_bytes(path, b"x")
        assert path.read_bytes() == b"x"

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        """A write that raises from inside the block leaves the previous
        contents untouched and no tmp file behind."""
        path = tmp_path / "a.bin"
        atomic_write_bytes(path, b"old")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_writer(path) as handle:
                handle.write(b"half of the new conten")
                raise RuntimeError("crash mid-write")
        assert path.read_bytes() == b"old"
        assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]

    def test_writer_yields_a_real_file(self, tmp_path):
        """numpy's tofile needs a real handle with a fileno."""
        np = pytest.importorskip("numpy")
        path = tmp_path / "a.raw"
        array = np.arange(16, dtype=np.uint64)
        with atomic_writer(path) as handle:
            array.tofile(handle)
        assert path.read_bytes() == array.tobytes()

    def test_tmp_marker_is_recognised(self, tmp_path):
        assert is_tmp_artifact(tmp_path / "a.mlt.tmp-123-4")
        assert not is_tmp_artifact(tmp_path / "a.mlt")


class TestDiskFaults:
    def test_torn_write_truncates_tmp_and_raises(self, tmp_path):
        path = tmp_path / "a.bin"
        plan = FaultPlan.parse("torn_write:1.0")
        with pytest.raises(InjectedFault, match="torn_write"):
            atomic_write_bytes(path, b"x" * 100, faults=plan)
        assert not path.exists()
        (orphan,) = tmp_path.iterdir()
        assert is_tmp_artifact(orphan)
        assert orphan.stat().st_size < 100

    def test_enospc_raises_oserror(self, tmp_path):
        plan = FaultPlan.parse("enospc:1.0")
        with pytest.raises(OSError) as info:
            atomic_write_bytes(tmp_path / "a.bin", b"x" * 100, faults=plan)
        assert info.value.errno == errno.ENOSPC
        assert not (tmp_path / "a.bin").exists()

    def test_rename_fail_leaves_complete_orphan(self, tmp_path):
        path = tmp_path / "a.bin"
        plan = FaultPlan.parse("rename_fail:1.0")
        with pytest.raises(InjectedFault, match="rename_fail"):
            atomic_write_bytes(path, b"x" * 100, faults=plan)
        assert not path.exists()
        (orphan,) = tmp_path.iterdir()
        # The payload landed completely; only the commit rename failed.
        assert orphan.read_bytes() == b"x" * 100

    def test_bitflip_is_silent_and_flips_exactly_one_bit(self, tmp_path):
        path = tmp_path / "a.bin"
        plan = FaultPlan.parse("bitflip:1.0")
        atomic_write_bytes(path, b"\x00" * 64, faults=plan)
        flipped = sum(bin(b).count("1") for b in path.read_bytes())
        assert flipped == 1

    def test_explicit_no_faults_plan_suppresses_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "torn_write:1.0")
        atomic_write_bytes(tmp_path / "a.bin", b"x", faults=NO_FAULTS)
        assert (tmp_path / "a.bin").read_bytes() == b"x"

    def test_env_plan_applies_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "rename_fail:1.0")
        with pytest.raises(InjectedFault):
            atomic_write_bytes(tmp_path / "a.bin", b"x")

    def test_draws_are_per_write_not_per_path(self, tmp_path):
        """Repeated writes to one path get fresh draws (the per-process
        sequence number is the attempt), so a retry can succeed."""
        plan = FaultPlan.parse("torn_write:0.5")
        outcomes = set()
        for _ in range(16):
            try:
                atomic_write_bytes(tmp_path / "a.bin", b"x" * 10, faults=plan)
                outcomes.add("ok")
            except InjectedFault:
                outcomes.add("torn")
        assert outcomes == {"ok", "torn"}


class TestQuarantine:
    def test_moves_file_and_writes_reason_sidecar(self, tmp_path):
        victim = tmp_path / "bad.mlt"
        victim.write_bytes(b"corrupt bytes")
        destination = quarantine(victim, "digest mismatch")
        assert not victim.exists()
        assert destination.parent == tmp_path / "quarantine"
        assert destination.read_bytes() == b"corrupt bytes"
        sidecar = json.loads(
            destination.with_name(destination.name + ".reason.json").read_text()
        )
        assert sidecar["reason"] == "digest mismatch"
        assert sidecar["artifact"] == str(victim)

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine(tmp_path / "gone.mlt", "whatever") is None

    def test_path_is_immediately_reusable(self, tmp_path):
        victim = tmp_path / "bad.mlt"
        victim.write_bytes(b"old")
        quarantine(victim, "reason")
        atomic_write_bytes(victim, b"rebuilt")
        assert victim.read_bytes() == b"rebuilt"

    def test_two_quarantines_of_same_name_both_survive(self, tmp_path):
        for payload in (b"first", b"second"):
            victim = tmp_path / "bad.mlt"
            victim.write_bytes(payload)
            quarantine(victim, "reason")
        contents = {
            p.read_bytes()
            for p in (tmp_path / "quarantine").iterdir()
            if not p.name.endswith(".reason.json")
        }
        assert contents == {b"first", b"second"}


class TestAdvisoryLockApi:
    def test_acquire_release_round_trip(self, tmp_path):
        lock = AdvisoryLock(tmp_path / "a.lock", name="test")
        assert not lock.held
        lock.acquire()
        assert lock.held
        holder = holder_record(tmp_path / "a.lock")
        assert holder["pid"] == os.getpid()
        assert holder["boot_id"] == boot_id()
        assert holder["name"] == "test"
        lock.release()
        assert not lock.held
        # Release blanks the record but leaves the file (unlinking races
        # waiters holding the old inode).
        assert (tmp_path / "a.lock").exists()
        assert holder_record(tmp_path / "a.lock") is None

    def test_release_is_idempotent(self, tmp_path):
        lock = AdvisoryLock(tmp_path / "a.lock").acquire()
        lock.release()
        lock.release()

    def test_context_manager_releases(self, tmp_path):
        with AdvisoryLock(tmp_path / "a.lock").acquire() as lock:
            assert lock.held
        assert not lock.held

    def test_probe_states(self, tmp_path):
        path = tmp_path / "a.lock"
        assert probe_lock(path) == "free"  # no file at all
        lock = AdvisoryLock(path, name="probe").acquire()
        assert probe_lock(path) == "held"
        lock.release()
        assert probe_lock(path) == "free"  # blank record: clean release

    def test_dead_holder_record_is_stale(self, tmp_path):
        assert holder_is_stale({"pid": 2 ** 22 + 1, "boot_id": boot_id()})
        assert holder_is_stale({"pid": os.getpid(), "boot_id": "not-this-boot"})
        assert not holder_is_stale({"pid": os.getpid(), "boot_id": boot_id()})

    def test_lock_held_error_names_the_holder(self, tmp_path):
        path = tmp_path / "a.lock"
        path.write_text(json.dumps(
            {"pid": 4242, "boot_id": boot_id(), "name": "other-sweep"}
        ))
        error = LockHeldError(path, holder_record(path))
        assert "4242" in str(error)
        assert "other-sweep" in str(error)

    def test_boot_id_is_stable(self):
        assert boot_id() == boot_id()
        assert boot_id()
