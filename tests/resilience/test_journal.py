"""The checkpoint journal: durable, torn-write-tolerant, and resumable
to a grid identical to an uninterrupted run."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.audit import manifest as run_manifest
from repro.core.sweep import sweep_functional, sweep_timing
from repro.resilience.journal import (
    SweepJournal,
    current_journal,
    decode_functional,
    decode_timing,
    encode_functional,
    encode_timing,
    journaling,
)
from repro.sim import memo
from repro.sim.fast import run_functional
from repro.sim.timing import TimingSimulator


def assert_counts_equal(a, b):
    assert a.cpu_reads == b.cpu_reads
    assert a.cpu_writes == b.cpu_writes
    for sa, sb in zip(a.level_stats, b.level_stats):
        assert sa == sb
    assert a.memory_reads == b.memory_reads
    assert a.memory_writes == b.memory_writes


class TestRoundTrip:
    def test_functional_payload(self, tiny_traces, tiny_config):
        result = run_functional(tiny_traces[0], tiny_config)
        payload = json.loads(json.dumps(encode_functional(result)))
        restored = decode_functional(payload, tiny_config)
        assert_counts_equal(restored, result)
        assert restored.config is tiny_config
        assert restored.trace_name == result.trace_name

    def test_timing_payload_is_nanosecond_identical(self, tiny_traces, tiny_config):
        result = TimingSimulator(tiny_config).run(tiny_traces[0])
        payload = json.loads(json.dumps(encode_timing(result)))
        restored = decode_timing(payload, tiny_config)
        # Bit-exact floats: JSON round-trips IEEE doubles exactly.
        assert restored.total_ns == result.total_ns
        assert restored.base_ns == result.base_ns
        assert restored.read_stall_ns == result.read_stall_ns
        assert restored.write_stall_ns == result.write_stall_ns
        assert restored.buffer_full_stalls == list(result.buffer_full_stalls)
        assert_counts_equal(restored, result)


class TestJournalFile:
    def test_record_and_restore(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        result = run_functional(tiny_traces[0], tiny_config)
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell("functional", key, result)
        journal.close()

        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 1
        restored = reopened.restore("functional", key, tiny_config)
        assert_counts_equal(restored, result)
        # A different kind under the same key is a different cell.
        assert reopened.restore("timing", key, tiny_config) is None
        reopened.close()

    def test_torn_trailing_line_is_skipped(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell(
            "functional", key, run_functional(tiny_traces[0], tiny_config)
        )
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": "cell", "kind": "functional", "key": "abc')

        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 1
        assert reopened.restore("functional", key, tiny_config) is not None
        reopened.close()

    def test_checksum_mismatch_is_skipped(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell(
            "functional", key, run_functional(tiny_traces[0], tiny_config)
        )
        journal.close()
        lines = path.read_text().splitlines()
        tampered = lines[-1].replace('"cpu_reads": ', '"cpu_reads": 9')
        assert tampered != lines[-1]
        path.write_text("\n".join(lines[:-1] + [tampered]) + "\n")

        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 0
        reopened.close()

    def test_last_complete_record_wins(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        trace = tiny_traces[0]
        key = memo.memo_key(trace, tiny_config)
        first = run_functional(trace, tiny_config)
        journal = SweepJournal(path)
        journal.record_cell("functional", key, first)
        journal.record_cell("functional", key, first)
        journal.close()
        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 1
        reopened.close()

    def test_fresh_open_truncates(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell(
            "functional", key, run_functional(tiny_traces[0], tiny_config)
        )
        journal.close()

        fresh = SweepJournal(path, resume=False)
        assert fresh.restorable_cells == 0
        fresh.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["t"] for r in records] == ["header"]

    def test_activation_stack(self, tmp_path):
        assert current_journal() is None
        with journaling(tmp_path / "a.jsonl") as outer:
            assert current_journal() is outer
            with journaling(tmp_path / "b.jsonl") as inner:
                assert current_journal() is inner
            assert current_journal() is outer
        assert current_journal() is None


class TestSweepResume:
    def test_resumed_sweep_simulates_nothing(
        self, tmp_path, tiny_traces, config_grid
    ):
        path = tmp_path / "j.jsonl"
        with journaling(path):
            first = sweep_functional(tiny_traces, config_grid, workers=0)

        memo.clear_memo_cache()
        with run_manifest.recording("resume") as recorder:
            with journaling(path, resume=True):
                second = sweep_functional(tiny_traces, config_grid, workers=0)
        (note,) = recorder.sweeps
        assert note.simulated == 0
        assert note.resumed > 0
        for row_a, row_b in zip(first, second):
            for a, b in zip(row_a, row_b):
                assert_counts_equal(a, b)

    def test_resumed_timing_sweep_is_nanosecond_identical(
        self, tmp_path, tiny_traces, config_grid
    ):
        path = tmp_path / "j.jsonl"
        with journaling(path):
            first = sweep_timing(tiny_traces, config_grid, workers=0)

        with run_manifest.recording("resume") as recorder:
            with journaling(path, resume=True):
                second = sweep_timing(tiny_traces, config_grid, workers=0)
        (note,) = recorder.sweeps
        assert note.simulated == 0
        assert note.resumed == len(config_grid) * len(tiny_traces)
        for row_a, row_b in zip(first, second):
            for a, b in zip(row_a, row_b):
                assert a.total_ns == b.total_ns
                assert a.read_stall_ns == b.read_stall_ns

    def test_sweep_without_journal_is_unaffected(self, tiny_traces, config_grid):
        grid = sweep_functional(tiny_traces, config_grid, workers=0)
        assert len(grid) == len(config_grid)


class TestKillResume:
    def test_sigkilled_sweep_resumes_identically(self, tmp_path, tiny_traces):
        """SIGKILL a journaled sweep mid-run; the resume must produce the
        same counts as a clean computation of every cell."""
        journal = tmp_path / "kill.jsonl"
        records = 5_000
        child_code = (
            "import sys\n"
            "from repro.resilience.chaos import build_traces, build_configs\n"
            "from repro.resilience.journal import journaling\n"
            "from repro.core.sweep import sweep_functional\n"
            "with journaling(sys.argv[1]):\n"
            f"    sweep_functional(build_traces({records}), build_configs(),"
            " workers=0)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [str(Path(__file__).resolve().parents[2] / "src"),
                        env.get("PYTHONPATH", "")] if p
        )
        # Slow every cell down so the kill lands mid-sweep.
        env["REPRO_FAULTS"] = "worker_hang:1.0"
        env["REPRO_FAULTS_HANG_S"] = "0.2"
        env.pop("REPRO_SWEEP_TIMEOUT", None)
        child = subprocess.Popen(
            [sys.executable, "-c", child_code, str(journal)], env=env
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count('"t": "cell"') >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail("child finished before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("journal never reached 2 cells")
            child.send_signal(signal.SIGKILL)
        finally:
            child.wait()

        from repro.resilience.chaos import build_configs, build_traces

        traces = build_traces(records)
        configs = build_configs()
        with run_manifest.recording("resume") as recorder:
            with journaling(journal, resume=True):
                grid = sweep_functional(traces, configs, workers=0)
        (note,) = recorder.sweeps
        # 3 distinct L1 sizes x 2 traces = 6 distinct functional cells;
        # whatever the journal holds, the rest gets simulated.
        assert note.resumed >= 2
        assert note.simulated == 6 - note.resumed
        for i, config in enumerate(configs):
            for j, trace in enumerate(traces):
                assert_counts_equal(grid[i][j], run_functional(trace, config))


class TestDeadRecords:
    def _littered_journal(self, path, trace, config, torn=2):
        """A journal with one live cell recorded twice (one superseded)
        plus ``torn`` torn trailing lines."""
        key = memo.memo_key(trace, config)
        result = run_functional(trace, config)
        journal = SweepJournal(path)
        journal.record_cell("functional", key, result)
        journal.record_cell("functional", key, result)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": "cell", "kind": "functional", "torn\n' * torn)
        return key, result

    def test_resume_counts_the_dead(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        self._littered_journal(path, tiny_traces[0], tiny_config, torn=2)
        journal = SweepJournal(path, resume=True)
        # One superseded duplicate + two torn lines.
        assert journal.dead == 3
        assert journal.restorable_cells == 1
        journal.close()

    def test_clean_journal_has_no_dead(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record_cell(
            "functional",
            memo.memo_key(tiny_traces[0], tiny_config),
            run_functional(tiny_traces[0], tiny_config),
        )
        journal.close()
        reopened = SweepJournal(path, resume=True)
        assert reopened.dead == 0
        reopened.close()


class TestCompaction:
    def _cell_lines(self, path):
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("t") == "cell"
        ]

    def test_compact_drops_dead_and_preserves_cells(
        self, tmp_path, tiny_traces, tiny_config
    ):
        path = tmp_path / "j.jsonl"
        key, result = TestDeadRecords()._littered_journal(
            path, tiny_traces[0], tiny_config
        )
        journal = SweepJournal(path, resume=True)
        dead = journal.dead
        assert journal.compact() == dead
        assert journal.dead == 0
        journal.close()

        assert len(self._cell_lines(path)) == 1
        header = json.loads(path.read_text().splitlines()[0])
        assert header["compacted"] is True
        reopened = SweepJournal(path, resume=True)
        assert reopened.dead == 0
        assert_counts_equal(
            reopened.restore("functional", key, tiny_config), result
        )
        reopened.close()

    def test_compacted_journal_accepts_appends(
        self, tmp_path, tiny_traces, tiny_config
    ):
        path = tmp_path / "j.jsonl"
        TestDeadRecords()._littered_journal(path, tiny_traces[0], tiny_config)
        journal = SweepJournal(path, resume=True)
        journal.compact()
        second_key = memo.memo_key(tiny_traces[1], tiny_config)
        journal.record_cell(
            "functional",
            second_key,
            run_functional(tiny_traces[1], tiny_config),
        )
        journal.close()
        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 2
        assert reopened.restore("functional", second_key, tiny_config) is not None
        reopened.close()

    def test_resume_auto_compacts_past_the_threshold(
        self, tmp_path, tiny_traces, tiny_config, monkeypatch
    ):
        import repro.resilience.journal as journal_module

        monkeypatch.setattr(journal_module, "AUTO_COMPACT_MIN_DEAD", 2)
        path = tmp_path / "j.jsonl"
        TestDeadRecords()._littered_journal(
            path, tiny_traces[0], tiny_config, torn=2
        )
        journal = SweepJournal(path, resume=True)  # 3 dead >= max(2, 1 live)
        assert journal.dead == 0
        journal.close()
        assert "torn" not in path.read_text()

    def test_no_auto_compact_below_the_threshold(
        self, tmp_path, tiny_traces, tiny_config
    ):
        path = tmp_path / "j.jsonl"
        TestDeadRecords()._littered_journal(
            path, tiny_traces[0], tiny_config, torn=2
        )
        journal = SweepJournal(path, resume=True)
        # 3 dead, but the default threshold is 64: the litter stays (a
        # rewrite per resume would cost more than it saves).
        assert journal.dead == 3
        journal.close()
        assert "torn" in path.read_text()


class TestCompactionAtomicity:
    """A crash mid-compaction must leave either the old segment or the
    new one fully valid -- never a blend.  The injected disk faults fire
    at the atomic swap's commit point, which is exactly where a SIGKILL
    or ENOSPC would land."""

    def _compact_under_fault(self, path, fault, monkeypatch):
        from repro.resilience.faults import InjectedFault

        journal = SweepJournal(path, resume=True)
        dead_before = journal.dead
        monkeypatch.setenv("REPRO_FAULTS", fault)
        with pytest.raises(InjectedFault):
            journal.compact()
        monkeypatch.delenv("REPRO_FAULTS")
        # The failed swap never touched the published segment, so the
        # dead records are still there (and still counted).
        assert journal.dead == dead_before
        return journal

    @pytest.mark.parametrize("fault", ["rename_fail:1.0", "torn_write:1.0"])
    def test_failed_swap_leaves_old_segment_valid(
        self, tmp_path, tiny_traces, tiny_config, monkeypatch, fault
    ):
        path = tmp_path / "j.jsonl"
        key, result = TestDeadRecords()._littered_journal(
            path, tiny_traces[0], tiny_config
        )
        journal = self._compact_under_fault(path, fault, monkeypatch)
        journal.close()

        # The damage lives on an orphaned tmp file (doctor fodder); the
        # journal itself still restores every cell.
        from repro.resilience.integrity import is_tmp_artifact

        assert any(is_tmp_artifact(p) for p in tmp_path.iterdir())
        reopened = SweepJournal(path, resume=True)
        assert_counts_equal(
            reopened.restore("functional", key, tiny_config), result
        )
        reopened.close()

    def test_appending_continues_on_the_old_segment(
        self, tmp_path, tiny_traces, tiny_config, monkeypatch
    ):
        path = tmp_path / "j.jsonl"
        key, _ = TestDeadRecords()._littered_journal(
            path, tiny_traces[0], tiny_config
        )
        journal = self._compact_under_fault(path, "rename_fail:1.0", monkeypatch)
        second_key = memo.memo_key(tiny_traces[1], tiny_config)
        journal.record_cell(
            "functional",
            second_key,
            run_functional(tiny_traces[1], tiny_config),
        )
        journal.close()
        reopened = SweepJournal(path, resume=True)
        assert reopened.restore("functional", key, tiny_config) is not None
        assert reopened.restore("functional", second_key, tiny_config) is not None
        reopened.close()


class TestJournalLock:
    def test_second_writer_fails_fast_with_holder_identity(
        self, tmp_path, monkeypatch
    ):
        import repro.resilience.journal as journal_module
        from repro.resilience.integrity import LockHeldError

        monkeypatch.setattr(journal_module, "LOCK_GRACE_S", 0.2)
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path, name="first")
        try:
            with pytest.raises(LockHeldError, match="journal:first"):
                SweepJournal(path, resume=True, name="second")
        finally:
            journal.close()
        # Once the holder releases, the path is immediately reusable.
        successor = SweepJournal(path, resume=True, name="second")
        successor.close()
