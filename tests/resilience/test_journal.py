"""The checkpoint journal: durable, torn-write-tolerant, and resumable
to a grid identical to an uninterrupted run."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.audit import manifest as run_manifest
from repro.core.sweep import sweep_functional, sweep_timing
from repro.resilience.journal import (
    SweepJournal,
    current_journal,
    decode_functional,
    decode_timing,
    encode_functional,
    encode_timing,
    journaling,
)
from repro.sim import memo
from repro.sim.fast import run_functional
from repro.sim.timing import TimingSimulator


def assert_counts_equal(a, b):
    assert a.cpu_reads == b.cpu_reads
    assert a.cpu_writes == b.cpu_writes
    for sa, sb in zip(a.level_stats, b.level_stats):
        assert sa == sb
    assert a.memory_reads == b.memory_reads
    assert a.memory_writes == b.memory_writes


class TestRoundTrip:
    def test_functional_payload(self, tiny_traces, tiny_config):
        result = run_functional(tiny_traces[0], tiny_config)
        payload = json.loads(json.dumps(encode_functional(result)))
        restored = decode_functional(payload, tiny_config)
        assert_counts_equal(restored, result)
        assert restored.config is tiny_config
        assert restored.trace_name == result.trace_name

    def test_timing_payload_is_nanosecond_identical(self, tiny_traces, tiny_config):
        result = TimingSimulator(tiny_config).run(tiny_traces[0])
        payload = json.loads(json.dumps(encode_timing(result)))
        restored = decode_timing(payload, tiny_config)
        # Bit-exact floats: JSON round-trips IEEE doubles exactly.
        assert restored.total_ns == result.total_ns
        assert restored.base_ns == result.base_ns
        assert restored.read_stall_ns == result.read_stall_ns
        assert restored.write_stall_ns == result.write_stall_ns
        assert restored.buffer_full_stalls == list(result.buffer_full_stalls)
        assert_counts_equal(restored, result)


class TestJournalFile:
    def test_record_and_restore(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        result = run_functional(tiny_traces[0], tiny_config)
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell("functional", key, result)
        journal.close()

        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 1
        restored = reopened.restore("functional", key, tiny_config)
        assert_counts_equal(restored, result)
        # A different kind under the same key is a different cell.
        assert reopened.restore("timing", key, tiny_config) is None
        reopened.close()

    def test_torn_trailing_line_is_skipped(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell(
            "functional", key, run_functional(tiny_traces[0], tiny_config)
        )
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": "cell", "kind": "functional", "key": "abc')

        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 1
        assert reopened.restore("functional", key, tiny_config) is not None
        reopened.close()

    def test_checksum_mismatch_is_skipped(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell(
            "functional", key, run_functional(tiny_traces[0], tiny_config)
        )
        journal.close()
        lines = path.read_text().splitlines()
        tampered = lines[-1].replace('"cpu_reads": ', '"cpu_reads": 9')
        assert tampered != lines[-1]
        path.write_text("\n".join(lines[:-1] + [tampered]) + "\n")

        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 0
        reopened.close()

    def test_last_complete_record_wins(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        trace = tiny_traces[0]
        key = memo.memo_key(trace, tiny_config)
        first = run_functional(trace, tiny_config)
        journal = SweepJournal(path)
        journal.record_cell("functional", key, first)
        journal.record_cell("functional", key, first)
        journal.close()
        reopened = SweepJournal(path, resume=True)
        assert reopened.restorable_cells == 1
        reopened.close()

    def test_fresh_open_truncates(self, tmp_path, tiny_traces, tiny_config):
        path = tmp_path / "j.jsonl"
        key = memo.memo_key(tiny_traces[0], tiny_config)
        journal = SweepJournal(path)
        journal.record_cell(
            "functional", key, run_functional(tiny_traces[0], tiny_config)
        )
        journal.close()

        fresh = SweepJournal(path, resume=False)
        assert fresh.restorable_cells == 0
        fresh.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["t"] for r in records] == ["header"]

    def test_activation_stack(self, tmp_path):
        assert current_journal() is None
        with journaling(tmp_path / "a.jsonl") as outer:
            assert current_journal() is outer
            with journaling(tmp_path / "b.jsonl") as inner:
                assert current_journal() is inner
            assert current_journal() is outer
        assert current_journal() is None


class TestSweepResume:
    def test_resumed_sweep_simulates_nothing(
        self, tmp_path, tiny_traces, config_grid
    ):
        path = tmp_path / "j.jsonl"
        with journaling(path):
            first = sweep_functional(tiny_traces, config_grid, workers=0)

        memo.clear_memo_cache()
        with run_manifest.recording("resume") as recorder:
            with journaling(path, resume=True):
                second = sweep_functional(tiny_traces, config_grid, workers=0)
        (note,) = recorder.sweeps
        assert note.simulated == 0
        assert note.resumed > 0
        for row_a, row_b in zip(first, second):
            for a, b in zip(row_a, row_b):
                assert_counts_equal(a, b)

    def test_resumed_timing_sweep_is_nanosecond_identical(
        self, tmp_path, tiny_traces, config_grid
    ):
        path = tmp_path / "j.jsonl"
        with journaling(path):
            first = sweep_timing(tiny_traces, config_grid, workers=0)

        with run_manifest.recording("resume") as recorder:
            with journaling(path, resume=True):
                second = sweep_timing(tiny_traces, config_grid, workers=0)
        (note,) = recorder.sweeps
        assert note.simulated == 0
        assert note.resumed == len(config_grid) * len(tiny_traces)
        for row_a, row_b in zip(first, second):
            for a, b in zip(row_a, row_b):
                assert a.total_ns == b.total_ns
                assert a.read_stall_ns == b.read_stall_ns

    def test_sweep_without_journal_is_unaffected(self, tiny_traces, config_grid):
        grid = sweep_functional(tiny_traces, config_grid, workers=0)
        assert len(grid) == len(config_grid)


class TestKillResume:
    def test_sigkilled_sweep_resumes_identically(self, tmp_path, tiny_traces):
        """SIGKILL a journaled sweep mid-run; the resume must produce the
        same counts as a clean computation of every cell."""
        journal = tmp_path / "kill.jsonl"
        records = 5_000
        child_code = (
            "import sys\n"
            "from repro.resilience.chaos import build_traces, build_configs\n"
            "from repro.resilience.journal import journaling\n"
            "from repro.core.sweep import sweep_functional\n"
            "with journaling(sys.argv[1]):\n"
            f"    sweep_functional(build_traces({records}), build_configs(),"
            " workers=0)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [str(Path(__file__).resolve().parents[2] / "src"),
                        env.get("PYTHONPATH", "")] if p
        )
        # Slow every cell down so the kill lands mid-sweep.
        env["REPRO_FAULTS"] = "worker_hang:1.0"
        env["REPRO_FAULTS_HANG_S"] = "0.2"
        env.pop("REPRO_SWEEP_TIMEOUT", None)
        child = subprocess.Popen(
            [sys.executable, "-c", child_code, str(journal)], env=env
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count('"t": "cell"') >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail("child finished before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("journal never reached 2 cells")
            child.send_signal(signal.SIGKILL)
        finally:
            child.wait()

        from repro.resilience.chaos import build_configs, build_traces

        traces = build_traces(records)
        configs = build_configs()
        with run_manifest.recording("resume") as recorder:
            with journaling(journal, resume=True):
                grid = sweep_functional(traces, configs, workers=0)
        (note,) = recorder.sweeps
        # 3 distinct L1 sizes x 2 traces = 6 distinct functional cells;
        # whatever the journal holds, the rest gets simulated.
        assert note.resumed >= 2
        assert note.simulated == 6 - note.resumed
        for i, config in enumerate(configs):
            for j, trace in enumerate(traces):
                assert_counts_equal(grid[i][j], run_functional(trace, config))
