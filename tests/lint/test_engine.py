"""Engine-level tests: suppressions, baseline round-trip, scoping, registry."""

from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    check_source,
    get_rules,
    lint_paths,
    noqa_rules,
    package_relpath,
)
from repro.lint.engine import Finding


# -- inline suppressions -----------------------------------------------------


def test_noqa_parses_single_rule():
    assert noqa_rules("x = 1  # repro: noqa RPR001") == frozenset({"RPR001"})


def test_noqa_parses_multiple_rules():
    assert noqa_rules("x  # repro: noqa RPR001, RPR002") == frozenset(
        {"RPR001", "RPR002"}
    )


def test_noqa_blanket():
    assert noqa_rules("x = 1  # repro: noqa") == frozenset()


def test_noqa_absent():
    assert noqa_rules("x = 1  # a normal comment") is None


def test_noqa_with_trailing_explanation():
    assert noqa_rules(
        "t = time.time()  # repro: noqa RPR001 -- wall time for logs only"
    ) == frozenset({"RPR001"})


def test_inline_suppression_drops_the_named_rule():
    source = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: noqa RPR001 -- display only\n"
    )
    assert check_source(source, "sim/x.py") == []


def test_inline_suppression_other_rule_does_not_apply():
    source = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: noqa RPR002\n"
    )
    assert [f.rule for f in check_source(source, "sim/x.py")] == ["RPR001"]


def test_noqa_on_last_line_covers_the_whole_statement():
    """Regression: a finding anchored to a multi-line statement's first
    line must honour a directive on any of the statement's lines."""
    source = (
        "import time\n"
        "def f():\n"
        "    return max(\n"
        "        time.time(),\n"
        "        0.0,\n"
        "    )  # repro: noqa RPR001 -- display only\n"
    )
    assert check_source(source, "sim/x.py") == []


def test_noqa_on_first_line_covers_later_lines():
    source = (
        "import time\n"
        "def f():\n"
        "    return max(  # repro: noqa RPR001\n"
        "        time.time(),\n"
        "        0.0,\n"
        "    )\n"
    )
    assert check_source(source, "sim/x.py") == []


def test_compound_statement_noqa_spans_the_header_only():
    """A directive on an ``if``/``with``/``def`` header must not leak
    into the suite -- that would be a file-wide blanket in disguise."""
    source = (
        "import time\n"
        "def f(x):\n"
        "    if x:  # repro: noqa RPR001\n"
        "        return time.time()\n"
        "    return 0\n"
    )
    assert [f.rule for f in check_source(source, "sim/x.py")] == ["RPR001"]


# -- baseline ----------------------------------------------------------------


def _finding(message="m", line=3):
    return Finding(
        rule="RPR001", path="sim/x.py", line=line, column=1, message=message
    )


def test_baseline_round_trip(tmp_path):
    findings = [_finding("a"), _finding("a", line=9), _finding("b")]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).write(path)
    loaded = Baseline.load(path)
    kept, matched = loaded.filter(list(findings))
    assert kept == [] and matched == 3


def test_chain_fingerprint_ignores_lines_and_message():
    """Interprocedural findings baseline on the witness chain: moving a
    helper or rewording the diagnostic must not churn the baseline."""
    a = Finding(
        rule="RPR006", path="sim/x.py", line=3, column=1,
        message="raw artifact write", chain=("save", "_dump", 'open(.., "w")'),
    )
    b = Finding(
        rule="RPR006", path="sim/x.py", line=90, column=1,
        message="reworded", chain=("save", "_dump", 'open(.., "w")'),
    )
    assert a.fingerprint == b.fingerprint


def test_chain_fingerprint_distinguishes_chains():
    a = Finding(
        rule="RPR006", path="sim/x.py", line=3, column=1,
        message="m", chain=("save", "_dump"),
    )
    b = Finding(
        rule="RPR006", path="sim/x.py", line=3, column=1,
        message="m", chain=("save", "_other"),
    )
    assert a.fingerprint != b.fingerprint


def test_chain_round_trips_through_dict():
    a = Finding(
        rule="RPR009", path="core/x.py", line=7, column=1,
        message="m", chain=("f", "g", "run_pooled"),
    )
    assert Finding.from_dict(a.as_dict()) == a


def test_baseline_fingerprint_ignores_line_numbers():
    moved = [_finding("a", line=100)]
    baseline = Baseline.from_findings([_finding("a", line=3)])
    kept, matched = baseline.filter(moved)
    assert kept == [] and matched == 1


def test_baseline_counts_bound_matches():
    """Two identical findings with a baseline of one: one stays red."""
    baseline = Baseline.from_findings([_finding("a")])
    kept, matched = baseline.filter([_finding("a", line=3), _finding("a", line=9)])
    assert matched == 1 and len(kept) == 1


def test_baseline_never_covers_new_findings():
    baseline = Baseline.from_findings([_finding("old message")])
    kept, matched = baseline.filter([_finding("new message")])
    assert matched == 0 and len(kept) == 1


def test_baseline_missing_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "missing.json")
    assert baseline.counts == {}


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "findings": {}}')
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_lint_paths_applies_baseline(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    first = lint_paths([bad])
    assert first.exit_code == 1 and len(first.findings) == 1
    baseline = Baseline.from_findings(first.findings)
    second = lint_paths([bad], baseline=baseline)
    assert second.exit_code == 0 and second.baselined == 1


# -- scoping / paths ---------------------------------------------------------


def test_package_relpath_real_tree():
    assert package_relpath(Path("src/repro/sim/fast.py")) == "sim/fast.py"


def test_package_relpath_fixture_tree():
    path = Path("tests/lint/fixtures/repro/sim/bad_determinism.py")
    assert package_relpath(path) == "sim/bad_determinism.py"


def test_package_relpath_innermost_repro_wins():
    path = Path("repro/vendor/repro/cache/lru.py")
    assert package_relpath(path) == "cache/lru.py"


def test_package_relpath_fallback_is_filename():
    assert package_relpath(Path("scripts/tool.py")) == "tool.py"


# -- registry ----------------------------------------------------------------


def test_get_rules_returns_all_nine():
    assert [rule.rule_id for rule in get_rules()] == [
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
        "RPR007",
        "RPR008",
        "RPR009",
    ]


def test_project_rules_are_marked_as_such():
    flavours = {r.rule_id: r.requires_project for r in get_rules()}
    assert [rid for rid, proj in flavours.items() if proj] == [
        "RPR006",
        "RPR007",
        "RPR008",
        "RPR009",
    ]


def test_get_rules_select_subset():
    assert [r.rule_id for r in get_rules(["RPR003", "RPR001"])] == [
        "RPR001",
        "RPR003",
    ]


def test_get_rules_unknown_id():
    with pytest.raises(ValueError, match="unknown rule"):
        get_rules(["RPR999"])


def test_every_rule_documents_itself():
    for rule in get_rules():
        assert rule.name and rule.rationale and rule.severity == "error"


# -- syntax errors -----------------------------------------------------------


def test_unparsable_file_is_a_finding_not_a_crash(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = lint_paths([bad])
    assert result.exit_code == 1
    (finding,) = result.findings
    assert finding.rule == "RPR000"
    assert "does not parse" in finding.message
