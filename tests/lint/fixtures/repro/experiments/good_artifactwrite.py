"""RPR006 good fixture: every durable write rides the integrity layer.

``atomic_write_text`` for rendered text, ``atomic_writer`` for
streaming bytes -- writes through the atomic handle are exempt because
the context manager owns the tmp-file + fsync + rename dance.
"""

import json

from repro.resilience.integrity import atomic_write_text, atomic_writer


def _render(report):
    return json.dumps(report, indent=2) + "\n"


def save_report(report, path):
    atomic_write_text(path, _render(report))


def save_blob(payload, path):
    with atomic_writer(path) as handle:
        handle.write(payload)
