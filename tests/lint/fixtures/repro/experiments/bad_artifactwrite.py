"""RPR006 bad fixture: raw artifact writes outside the integrity layer.

The raw ``open(.., "w")`` hides one call below the public entry point,
so the diagnostic must carry the chain ``save_report -> _raw_dump ->
open(.., "w")``.  Writes *through* the raw handle are not re-flagged --
the open is the violation.  Function names deliberately avoid the
memo-pattern vocabulary so RPR005/RPR008 stay silent, and the file
lives under ``experiments/`` which is outside RPR001's scope.
"""

import json
from pathlib import Path


def _render(report):
    return json.dumps(report, indent=2) + "\n"


def _raw_dump(report, path):
    with open(path, "w", encoding="utf-8") as handle:  # RPR006
        handle.write(_render(report))


def save_report(report, path):
    _raw_dump(report, path)


def save_summary(summary, path):
    Path(path).write_text(str(summary))  # RPR006
