"""RPR001 bad fixture: every banned ambient-clock / randomness pattern.

Never imported -- parsed by the linter in tests and in the CI fixture
check.  Each flagged line is annotated with the expectation.
"""

import random
import time
from datetime import datetime

import numpy as np


def stamp_result(result):
    result["at"] = time.time()  # RPR001: wall clock
    result["tick"] = time.perf_counter()  # RPR001: wall clock
    result["day"] = datetime.now()  # RPR001: wall clock
    return result


def jitter(value):
    return value + random.random()  # RPR001: global random state


def shuffle_blocks(blocks):
    random.shuffle(blocks)  # RPR001: global random state
    return blocks


def unseeded_generator():
    return random.Random()  # RPR001: no seed


def numpy_noise(count):
    return np.random.rand(count)  # RPR001: numpy global state


def unseeded_rng():
    return np.random.default_rng()  # RPR001: no seed
