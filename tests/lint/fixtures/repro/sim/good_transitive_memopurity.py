"""RPR008 good fixture: memo roots whose whole call tree is pure.

The helpers compute only from their arguments, so the fixed point
propagates no effects into the roots.
"""


def _block_count(trace, block_bytes):
    return (len(trace) + block_bytes - 1) // block_bytes


def _cell(trace, config):
    return (config, _block_count(trace, 16))


def run_functional_grid(trace, configs):
    return [_cell(trace, config) for config in configs]


def grid_projection(grid):
    return [cell for cell in grid if cell is not None]
