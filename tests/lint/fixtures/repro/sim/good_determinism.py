"""RPR001 good fixture: the sanctioned seeded-generator patterns."""

import random

import numpy as np


def seeded_generator(seed):
    return random.Random(seed)


def seeded_rng(seed):
    return np.random.default_rng(seed)


def draw(rng, count):
    return rng.integers(0, 100, size=count)


def pick(rng, blocks):
    return blocks[rng.randrange(len(blocks))]
