"""RPR008 bad fixture: ambient reads entering memo roots through helpers.

The roots (``run_functional_grid``, ``grid_projection``) are textually
pure -- RPR005 has nothing to say -- but their helpers read the
environment three and two calls down respectively.  Only the
transitive rule sees it, and the diagnostic must print the full chain,
e.g. ``run_functional_grid -> _chunk_hint -> _read_knob ->
os.environ.get``.  Effects are chosen to be RPR008-exclusive:
non-``REPRO_`` env names (no RPR003), no clocks or RNG (no RPR001),
helpers without memo-pattern names (no RPR005).
"""

import os


def _read_knob():
    return os.environ.get("MLCACHE_CHUNK")


def _chunk_hint():
    return _read_knob()


def _locale():
    return os.environ["LANG"]


def run_functional_grid(trace, configs):
    hint = _chunk_hint()  # RPR008
    return [(config, trace, hint) for config in configs]


def grid_projection(grid):
    return [(cell, _locale()) for cell in grid]  # RPR008
