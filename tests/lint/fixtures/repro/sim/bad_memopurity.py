"""RPR005 bad fixture: memo-path functions reading ambient state.

Lives under ``sim/`` with memo-pattern names, so the rule applies even
though this is not one of the strict modules.  The ambient reads here
are chosen to be RPR005-exclusive (non-``REPRO_`` env names, file and
stdin reads) so the fixture exercises exactly one rule; clock and
randomness impurity overlaps RPR001 and is covered by in-memory cases
in ``test_rules.py``.
"""

import os


def memo_key(trace, config):
    return (trace, config, os.getenv("HOSTNAME"))  # RPR005: env read


def functional_projection(config):
    return (config, os.environ["LANG"])  # RPR005: env read


def run_functional_memo(trace, config):
    return (trace, input())  # RPR005: stdin read


def trace_fingerprint(trace):
    with open("/tmp/salt") as handle:  # RPR005: file read
        return (trace, handle.read())
