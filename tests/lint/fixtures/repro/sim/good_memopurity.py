"""RPR005 good fixture: memo-path functions that are argument-pure."""

import hashlib


def memo_key(trace, config):
    return (trace_fingerprint(trace), config)


def trace_fingerprint(trace):
    digest = hashlib.sha256()
    for record in trace:
        digest.update(bytes(record))
    return digest.hexdigest()


def unrelated_helper(path):
    # Not memo-pattern-named and not in a strict module: ambient reads
    # here are RPR005-exempt (RPR003/RPR001 still apply on their own
    # terms).
    return len(str(path))
