"""RPR004 bad fixture: fork-unsafe callables handed to the worker pool."""

import threading
from multiprocessing import Process

from repro.resilience.executor import run_pooled

_PROGRESS = 0


def leaky_worker(cell):
    global _PROGRESS
    _PROGRESS += 1
    return cell


def locked_worker(cell, lock=threading.Lock()):
    with lock:
        return cell


def sweep(chunks, traces, workers):
    run_pooled("functional", lambda c: c, chunks, traces, workers)  # RPR004

    def local_worker(cell):
        return cell

    run_pooled("functional", local_worker, chunks, traces, workers)  # RPR004
    run_pooled("functional", leaky_worker, chunks, traces, workers)  # RPR004
    run_pooled("functional", locked_worker, chunks, traces, workers)  # RPR004
    process = Process(target=lambda: None)  # RPR004
    return process
