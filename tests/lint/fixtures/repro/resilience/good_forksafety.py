"""RPR004 good fixture: module-level, closure-free worker callables."""

from multiprocessing import Process

from repro.resilience.executor import run_pooled


def pure_worker(cell):
    return cell.value * 2


def sweep(chunks, traces, workers):
    run_pooled("functional", pure_worker, chunks, traces, workers)
    process = Process(target=pure_worker, args=(None,))
    return process
