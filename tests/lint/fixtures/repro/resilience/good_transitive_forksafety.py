"""RPR009 good fixture: a module-level pure function through a wrapper.

``_double`` is picklable and touches no globals, so forwarding it
through ``_submit`` into the pool is fine -- the flow analysis must
follow the same path it follows in the bad fixture and stay quiet.
"""


def run_pooled(items, fn, workers=2):
    return [fn(item) for item in items]


def _submit(items, fn):
    return run_pooled(items, fn)


def _double(item):
    return item * 2


def double_all(items):
    return _submit(items, _double)
