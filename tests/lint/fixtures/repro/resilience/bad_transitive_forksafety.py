"""RPR009 bad fixture: unpicklable/global-mutating callables reaching the
pool through indirection RPR004 cannot see.

Three escapes: a lambda stashed in a local before the entry call, a
lambda forwarded through the ``_submit`` wrapper, and a module function
whose global mutation hides one call down (``_tally -> _bump``).
``run_pooled`` is an in-module stand-in with the real entry point's
shape; RPR004 checks only literal arguments at the entry call, so it
stays blind to all three.
"""

_COUNTS = {}


def run_pooled(items, fn, workers=2):
    return [fn(item) for item in items]


def _submit(items, fn):
    return run_pooled(items, fn)


def _bump(item):
    _COUNTS[item] = _COUNTS.get(item, 0) + 1
    return item


def _tally(item):
    return _bump(item)


def double_all(items):
    doubler = lambda item: item * 2
    return run_pooled(items, doubler)  # RPR009


def offset_all(items, offset):
    return _submit(items, lambda item: item + offset)  # RPR009


def tally_all(items):
    return _submit(items, _tally)  # RPR009
