"""RPR007 good fixture: every journal mutation happens under the lock.

Both accepted shapes: the ``with AdvisoryLock(..)`` context, and the
``acquire(..) ... try/finally: release()`` idiom the journal itself
uses.  A helper called *from inside* a lock region is also discharged
-- the region is traced through the call graph.
"""

from repro.resilience.integrity import AdvisoryLock, atomic_write_text


def _rewrite_segment(path, lines):
    atomic_write_text(path, "".join(lines))


def compact_with_context(path, lines):
    with AdvisoryLock(path.with_suffix(".lock"), name="journal"):
        _rewrite_segment(path, lines)


def compact_acquire_release(path, lines, lock):
    lock.acquire(timeout_s=5.0)
    try:
        _rewrite_segment(path, lines)
    finally:
        lock.release()
