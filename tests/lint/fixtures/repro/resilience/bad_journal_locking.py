"""RPR007 bad fixture: a journal mutation reachable without the lock.

``atomic_write_text`` makes the write crash-safe but not *race*-safe:
nothing on the path ``compact_journal -> _rewrite_segment`` acquires
the advisory lock, so two sweeps sharing the journal can interleave
compactions.  The diagnostic must print that unlocked path.
"""

from repro.resilience.integrity import atomic_write_text


def _rewrite_segment(path, lines):
    atomic_write_text(path, "".join(lines))  # RPR007


def compact_journal(path, lines):
    kept = [line for line in lines if not line.startswith("#")]
    _rewrite_segment(path, kept)
