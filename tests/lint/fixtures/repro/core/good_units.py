"""RPR002 good fixture: consistent units, conversion products, converters."""


def total_ns(access_ns, transfer_ns):
    return access_ns + transfer_ns


def in_nanoseconds(cycles, cycle_ns):
    return cycles * cycle_ns


def converted_sum(ns_from_cycles, penalty_cycles, cycle_ns):
    return ns_from_cycles(penalty_cycles) + penalty_cycles * cycle_ns


def seconds_flavours(deadline_s, grace_seconds):
    return deadline_s + grace_seconds


def dimensionless(count, total):
    return count + total
