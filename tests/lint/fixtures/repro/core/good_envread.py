"""RPR003 good fixture: registered envcfg reads and non-REPRO env use."""

import os

from repro.core import envcfg

WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def registered_read():
    return envcfg.get(WORKERS_ENV)


def registered_raw():
    return envcfg.raw("REPRO_SWEEP_RETRIES")


def non_repro_namespace():
    return os.environ.get("PYTHONPATH", "")


def membership_probe():
    return "PYTEST_CURRENT_TEST" in os.environ
