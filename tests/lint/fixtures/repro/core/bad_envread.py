"""RPR003 bad fixture: direct and unregistered REPRO_* environment reads."""

import os

from repro.core import envcfg

KNOB_ENV = "REPRO_MYSTERY_KNOB"


def direct_get():
    return os.environ.get("REPRO_FOO")  # RPR003: direct read


def direct_getenv_via_constant():
    return os.getenv(KNOB_ENV)  # RPR003: direct read through a constant


def direct_subscript():
    return os.environ["REPRO_BAR"]  # RPR003: direct subscript


def unregistered():
    return envcfg.get("REPRO_NOT_REGISTERED")  # RPR003: no register() entry
