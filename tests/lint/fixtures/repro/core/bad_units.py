"""RPR002 bad fixture: additive arithmetic across unit suffixes."""


def total_latency(access_ns, penalty_cycles):
    return access_ns + penalty_cycles  # RPR002: ns + cycles


def shrink(size_bytes, reclaimed_words):
    size_bytes -= reclaimed_words  # RPR002: bytes -= words
    return size_bytes


def over_deadline(elapsed_ns, deadline_s):
    return elapsed_ns > deadline_s  # RPR002: ns compared to s


def accumulate(totals, delta_ms):
    totals.elapsed_ns += delta_ms  # RPR002: ns += ms (attribute operand)
    return totals
