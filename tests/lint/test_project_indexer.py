"""Indexer cache tests: warm runs re-parse only changed files, and a
stale summary is structurally impossible (digest mismatch forces the
rebuild)."""

import json

from repro.lint import lint_paths
from repro.lint.project import ProjectIndex
from repro.lint.project.indexer import CACHE_VERSION


def _make_tree(tmp_path):
    root = tmp_path / "repro"
    (root / "sim").mkdir(parents=True)
    (root / "core").mkdir()
    clock = root / "sim" / "clocky.py"
    clock.write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    clean = root / "core" / "pure.py"
    clean.write_text("def g(x):\n    return x + 1\n")
    return root, clock, clean


def test_warm_build_parses_nothing(tmp_path):
    root, clock, clean = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    files = sorted(root.rglob("*.py"))

    cold_parsed = []
    cold = ProjectIndex.build(files, cache_path=cache, parse_hook=cold_parsed.append)
    assert sorted(cold_parsed) == files and cold.parsed_count == 2

    warm_parsed = []
    warm = ProjectIndex.build(files, cache_path=cache, parse_hook=warm_parsed.append)
    assert warm_parsed == [] and warm.parsed_count == 0
    assert [s.to_dict() for s in warm.summaries] == [
        s.to_dict() for s in cold.summaries
    ]


def test_mutating_one_file_reparses_only_that_file(tmp_path):
    root, clock, clean = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    files = sorted(root.rglob("*.py"))
    ProjectIndex.build(files, cache_path=cache)

    clean.write_text(
        "import os\n\ndef g(x):\n    return os.getenv('REPRO_SECRET')\n"
    )
    parsed = []
    index = ProjectIndex.build(files, cache_path=cache, parse_hook=parsed.append)
    assert parsed == [clean] and index.parsed_count == 1
    # The re-parse saw the *new* content: the fresh violation is in the
    # summary's stored findings, so a stale cached result is impossible.
    by_module = index.by_module()
    findings = by_module["repro.core.pure"].findings
    assert [f["rule"] for f in findings] == ["RPR003"]


def test_corrupted_digest_entry_forces_reparse(tmp_path):
    root, clock, clean = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    files = sorted(root.rglob("*.py"))
    ProjectIndex.build(files, cache_path=cache)

    payload = json.loads(cache.read_text())
    key = str(clock.resolve())
    payload["files"][key]["digest"] = "0" * 64
    cache.write_text(json.dumps(payload))

    parsed = []
    ProjectIndex.build(files, cache_path=cache, parse_hook=parsed.append)
    assert parsed == [clock]


def test_version_or_salt_mismatch_rebuilds_everything(tmp_path):
    root, clock, clean = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    files = sorted(root.rglob("*.py"))
    ProjectIndex.build(files, cache_path=cache)

    payload = json.loads(cache.read_text())
    payload["salt"] = "not-the-engine-salt"
    cache.write_text(json.dumps(payload))
    index = ProjectIndex.build(files, cache_path=cache)
    assert index.parsed_count == 2

    payload = json.loads(cache.read_text())
    assert payload["version"] == CACHE_VERSION
    payload["version"] = 99
    cache.write_text(json.dumps(payload))
    index = ProjectIndex.build(files, cache_path=cache)
    assert index.parsed_count == 2


def test_garbage_cache_is_ignored_not_fatal(tmp_path):
    root, clock, clean = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{ not json")
    files = sorted(root.rglob("*.py"))
    index = ProjectIndex.build(files, cache_path=cache)
    assert index.parsed_count == 2
    # ... and the build replaced it with a valid cache.
    assert json.loads(cache.read_text())["version"] == CACHE_VERSION


def test_lint_paths_reports_parse_counts_through_the_cache(tmp_path):
    root, clock, clean = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cold = lint_paths([root], project=True, cache_path=cache)
    assert cold.parsed == 2 and cold.files == 2
    warm = lint_paths([root], project=True, cache_path=cache)
    assert warm.parsed == 0 and warm.files == 2
    assert [f.fingerprint for f in warm.findings] == [
        f.fingerprint for f in cold.findings
    ]


def test_cached_summaries_preserve_noqa_suppressions(tmp_path):
    root = tmp_path / "repro"
    (root / "sim").mkdir(parents=True)
    mod = root / "sim" / "suppressed.py"
    mod.write_text(
        "import time\n\ndef f():\n"
        "    return time.time()  # repro: noqa RPR001 -- display only\n"
    )
    cache = tmp_path / "cache.json"
    cold = lint_paths([root], project=True, cache_path=cache)
    warm = lint_paths([root], project=True, cache_path=cache)
    assert cold.findings == [] and warm.findings == []
    assert cold.suppressed == warm.suppressed == 1
