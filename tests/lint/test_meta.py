"""Meta-tests: the real source tree satisfies its own lint rules.

This is the check CI runs as a blocking job; keeping it in the test
suite too means a local ``pytest`` run catches a new violation before
the push does.
"""

from pathlib import Path

from repro.lint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_source_tree_is_lint_clean():
    """The full check, project analysis included: src/ must be clean
    under all nine rules with the committed (empty) baseline."""
    result = lint_paths([SRC], baseline=Baseline.load(BASELINE), project=True)
    rendered = "\n".join(item.render() for item in result.findings)
    assert result.exit_code == 0, f"lint findings in src/:\n{rendered}"
    assert result.files > 50  # the whole tree was actually visited


def test_source_tree_is_clean_under_each_project_rule():
    """Per-rule pass so a regression names the contract it broke."""
    for rule_id in ("RPR006", "RPR007", "RPR008", "RPR009"):
        result = lint_paths([SRC], select=[rule_id], project=True)
        rendered = "\n".join(item.render() for item in result.findings)
        assert result.exit_code == 0, f"{rule_id} findings:\n{rendered}"


def test_committed_baseline_is_empty():
    """The tree starts clean; the baseline exists only as the mechanism
    for grandfathering future rule tightenings.  If a finding lands in
    it, this test forces the conversation."""
    assert Baseline.load(BASELINE).counts == {}


def test_fixture_scope_matches_real_scope():
    """Fixtures under tests/lint/fixtures/repro/ resolve to the same
    package-relative paths as real sources, so scoped rules are
    genuinely exercised."""
    from repro.lint import package_relpath

    fixture = Path("tests/lint/fixtures/repro/sim/bad_determinism.py")
    real = Path("src/repro/sim/memo.py")
    assert package_relpath(fixture).startswith("sim/")
    assert package_relpath(real).startswith("sim/")
