"""CLI tests: exit codes, formats, baseline flags, project/changed
scoping, ``--explain``, engine-crash reporting, ``mlcache lint``."""

import json
import subprocess
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"
BAD = str(FIXTURES / "sim" / "bad_determinism.py")
GOOD = str(FIXTURES / "sim" / "good_determinism.py")


def test_clean_tree_exits_zero(capsys):
    assert main([GOOD, "--no-baseline"]) == EXIT_CLEAN
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    assert main([BAD, "--no-baseline"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "RPR001" in out and "sim/bad_determinism.py" in out


def test_every_bad_fixture_fails():
    for path in sorted(FIXTURES.rglob("bad_*.py")):
        assert main([str(path), "--no-baseline"]) == EXIT_FINDINGS, path


def test_missing_path_is_usage_error(capsys):
    assert main(["does/not/exist.py"]) == EXIT_USAGE
    assert "not found" in capsys.readouterr().err


def test_unknown_rule_is_usage_error(capsys):
    assert main([GOOD, "--select", "RPR999", "--no-baseline"]) == EXIT_USAGE
    assert "unknown rule" in capsys.readouterr().err


def test_select_narrows_rules(capsys):
    # bad_determinism only violates RPR001; selecting RPR002 finds nothing.
    assert main([BAD, "--select", "RPR002", "--no-baseline"]) == EXIT_CLEAN


def test_json_format(capsys):
    assert main([BAD, "--format", "json", "--no-baseline"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["files"] == 1
    assert payload["summary"]["findings"] == len(payload["findings"])
    assert {f["rule"] for f in payload["findings"]} == {"RPR001"}


def test_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([BAD, "--write-baseline", "--baseline", str(baseline)]) == EXIT_CLEAN
    assert baseline.exists()
    capsys.readouterr()
    assert main([BAD, "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "baselined" in capsys.readouterr().out


def test_corrupt_baseline_is_usage_error(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("not json")
    assert main([GOOD, "--baseline", str(baseline)]) == EXIT_USAGE
    assert "bad baseline" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in (
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
        "RPR006", "RPR007", "RPR008", "RPR009",
    ):
        assert rule_id in out
    assert "(project)" in out and "(per-file)" in out


# -- project toggle ----------------------------------------------------------

BAD_PROJECT = str(FIXTURES / "sim" / "bad_transitive_memopurity.py")


def test_project_analysis_is_the_default(capsys):
    assert main([BAD_PROJECT, "--no-baseline"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "RPR008" in out and "[chain:" in out


def test_no_project_skips_interprocedural_rules(capsys):
    assert main([BAD_PROJECT, "--no-project", "--no-baseline"]) == EXIT_CLEAN


# -- --explain ---------------------------------------------------------------


def test_explain_prints_the_rule_documentation(capsys):
    assert main(["--explain", "RPR008"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "transitive-memo-purity" in out
    assert "barrier" in out  # the noqa-barrier semantics are documented


def test_explain_unknown_rule_is_usage_error(capsys):
    assert main(["--explain", "RPR999"]) == EXIT_USAGE
    assert "unknown rule" in capsys.readouterr().err


# -- --changed ---------------------------------------------------------------


def _git(tmp_path, *argv):
    subprocess.run(
        ["git", *argv], cwd=tmp_path, check=True, capture_output=True,
        env={"PATH": "/usr/bin:/bin", "HOME": str(tmp_path),
             "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
    )


def test_changed_scopes_the_report_to_touched_files(tmp_path, monkeypatch, capsys):
    root = tmp_path / "repro" / "sim"
    root.mkdir(parents=True)
    committed = root / "old_bad.py"
    committed.write_text("import time\n\ndef f():\n    return time.time()\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    fresh = root / "new_bad.py"
    fresh.write_text("import time\n\ndef g():\n    return time.time()\n")
    monkeypatch.chdir(tmp_path)

    # Full run sees both files' findings; --changed reports only the
    # uncommitted one (the committed violation is outside the diff).
    assert main([str(tmp_path / "repro"), "--no-baseline"]) == EXIT_FINDINGS
    assert "old_bad.py" in capsys.readouterr().out
    assert main(
        [str(tmp_path / "repro"), "--changed", "--no-baseline"]
    ) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "new_bad.py" in out and "old_bad.py" not in out


def test_changed_outside_a_git_repo_is_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
    (tmp_path / "x.py").write_text("pass\n")
    assert main([str(tmp_path / "x.py"), "--changed", "--no-baseline"]) == EXIT_USAGE
    assert "--changed" in capsys.readouterr().err


# -- engine crash ------------------------------------------------------------


def test_engine_crash_exits_two_not_clean(monkeypatch, capsys):
    from repro.lint.project.indexer import ProjectIndex

    def explode(*args, **kwargs):
        raise RuntimeError("boom in the analyzer")

    monkeypatch.setattr(ProjectIndex, "build", classmethod(explode))
    assert main([GOOD, "--no-baseline"]) == EXIT_USAGE
    err = capsys.readouterr().err
    assert "internal error" in err and "boom in the analyzer" in err


def test_mlcache_lint_subcommand(capsys):
    from repro.experiments.cli import main as mlcache_main

    assert mlcache_main(["lint", GOOD, "--no-baseline"]) == EXIT_CLEAN
    assert mlcache_main(["lint", BAD, "--no-baseline"]) == EXIT_FINDINGS
    capsys.readouterr()
    assert mlcache_main(["lint", "--list-rules"]) == EXIT_CLEAN
    assert "RPR005" in capsys.readouterr().out
