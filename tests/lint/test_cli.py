"""CLI tests: exit codes, formats, baseline flags, ``mlcache lint``."""

import json
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"
BAD = str(FIXTURES / "sim" / "bad_determinism.py")
GOOD = str(FIXTURES / "sim" / "good_determinism.py")


def test_clean_tree_exits_zero(capsys):
    assert main([GOOD, "--no-baseline"]) == EXIT_CLEAN
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    assert main([BAD, "--no-baseline"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "RPR001" in out and "sim/bad_determinism.py" in out


def test_every_bad_fixture_fails():
    for path in sorted(FIXTURES.rglob("bad_*.py")):
        assert main([str(path), "--no-baseline"]) == EXIT_FINDINGS, path


def test_missing_path_is_usage_error(capsys):
    assert main(["does/not/exist.py"]) == EXIT_USAGE
    assert "not found" in capsys.readouterr().err


def test_unknown_rule_is_usage_error(capsys):
    assert main([GOOD, "--select", "RPR999", "--no-baseline"]) == EXIT_USAGE
    assert "unknown rule" in capsys.readouterr().err


def test_select_narrows_rules(capsys):
    # bad_determinism only violates RPR001; selecting RPR002 finds nothing.
    assert main([BAD, "--select", "RPR002", "--no-baseline"]) == EXIT_CLEAN


def test_json_format(capsys):
    assert main([BAD, "--format", "json", "--no-baseline"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["files"] == 1
    assert payload["summary"]["findings"] == len(payload["findings"])
    assert {f["rule"] for f in payload["findings"]} == {"RPR001"}


def test_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([BAD, "--write-baseline", "--baseline", str(baseline)]) == EXIT_CLEAN
    assert baseline.exists()
    capsys.readouterr()
    assert main([BAD, "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "baselined" in capsys.readouterr().out


def test_corrupt_baseline_is_usage_error(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("not json")
    assert main([GOOD, "--baseline", str(baseline)]) == EXIT_USAGE
    assert "bad baseline" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule_id in out


def test_mlcache_lint_subcommand(capsys):
    from repro.experiments.cli import main as mlcache_main

    assert mlcache_main(["lint", GOOD, "--no-baseline"]) == EXIT_CLEAN
    assert mlcache_main(["lint", BAD, "--no-baseline"]) == EXIT_FINDINGS
    capsys.readouterr()
    assert mlcache_main(["lint", "--list-rules"]) == EXIT_CLEAN
    assert "RPR005" in capsys.readouterr().out
