"""Behavioural tests for the interprocedural rules RPR006-RPR009:
witness chains, cross-module propagation, noqa barriers, and the
dedup boundaries against their per-file counterparts."""

from pathlib import Path

from repro.lint import check_source, lint_paths, package_relpath

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


def _lint_fixture(relative):
    path = FIXTURES / relative
    return check_source(path.read_text(), package_relpath(path))


def _lint_tree(tmp_path, modules):
    root = tmp_path / "repro"
    for relative, source in modules.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return lint_paths([root], project=True)


# -- witness chains ----------------------------------------------------------


def test_artifactwrite_chain_names_the_call_path():
    findings = _lint_fixture("experiments/bad_artifactwrite.py")
    assert findings[0].chain == ("save_report", "_raw_dump", 'open(.., "w")')
    assert "chain: save_report -> _raw_dump" in findings[0].render()


def test_lock_discipline_chain_shows_one_unlocked_path():
    (finding,) = _lint_fixture("resilience/bad_journal_locking.py")
    assert finding.chain == (
        "compact_journal", "_rewrite_segment", "atomic_write_text",
    )


def test_memopurity_chain_is_three_hops_deep():
    findings = _lint_fixture("sim/bad_transitive_memopurity.py")
    assert findings[0].chain == (
        "run_functional_grid", "_chunk_hint", "_read_knob", "os.environ.get",
    )


def test_forksafety_chain_traces_the_wrapper():
    findings = _lint_fixture("resilience/bad_transitive_forksafety.py")
    assert findings[1].chain == ("lambda", "_submit", "run_pooled")


# -- cross-module propagation ------------------------------------------------


def test_effects_propagate_across_modules(tmp_path):
    result = _lint_tree(tmp_path, {
        "sim/helpers_mod.py": (
            "import os\n\n"
            "def leak():\n"
            "    return os.environ.get('MLCACHE_X')\n"
        ),
        "sim/gridmod.py": (
            "from repro.sim.helpers_mod import leak\n\n"
            "def run_functional_x(trace):\n"
            "    return leak()\n"
        ),
    })
    (finding,) = result.findings
    assert finding.rule == "RPR008"
    assert finding.path == "sim/gridmod.py"
    assert finding.chain == ("run_functional_x", "leak", "os.environ.get")


def test_raw_write_in_helper_module_blames_the_writer(tmp_path):
    result = _lint_tree(tmp_path, {
        "core/sink.py": (
            "def spill(path, text):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(text)\n"
        ),
        "core/caller.py": (
            "from repro.core.sink import spill\n\n"
            "def publish(path):\n"
            "    spill(path, 'x')\n"
        ),
    })
    (finding,) = result.findings
    assert finding.rule == "RPR006" and finding.path == "core/sink.py"


# -- noqa barriers -----------------------------------------------------------


_BARRIER_TEMPLATE = (
    "import os\n\n"
    "def _knob():\n"
    "    return os.environ.get('MLCACHE_X')\n\n"
    "def _hint():\n"
    "    return _knob(){noqa}\n\n"
    "def run_functional_grid(trace, configs):\n"
    "    return (_hint(), trace, configs)\n"
)


def test_rpr008_fires_without_the_barrier():
    findings = check_source(
        _BARRIER_TEMPLATE.format(noqa=""), "sim/barrier.py"
    )
    assert [f.rule for f in findings] == ["RPR008"]


def test_rpr008_noqa_is_an_effect_barrier():
    """A noqa'd call line vouches for the whole subtree: the effect must
    not resurface in callers further up."""
    findings = check_source(
        _BARRIER_TEMPLATE.format(noqa="  # repro: noqa RPR008 -- vouched"),
        "sim/barrier.py",
    )
    assert findings == []


# -- rule-specific discharge paths -------------------------------------------


def test_atomic_writer_handle_is_exempt():
    assert _lint_fixture("experiments/good_artifactwrite.py") == []


def test_class_lock_guarantee_discharges_methods():
    source = (
        "from repro.resilience.integrity import AdvisoryLock, atomic_write_text\n\n"
        "class SegmentJournal:\n"
        "    def __init__(self, path):\n"
        "        self.path = path\n"
        "        self._lock = AdvisoryLock(path.with_suffix('.lock'))\n"
        "        self._lock.acquire(timeout_s=5.0)\n\n"
        "    def record(self, line):\n"
        "        atomic_write_text(self.path, line)\n"
    )
    assert check_source(source, "resilience/journalfile.py") == []


def test_lock_region_traced_through_helpers():
    assert _lint_fixture("resilience/good_journal_locking.py") == []


def test_direct_literal_lambda_is_left_to_rpr004():
    """RPR009 must not duplicate RPR004's finding for a lambda written
    literally at the pool entry call."""
    source = (
        "def run_pooled(items, fn, workers=2):\n"
        "    return [fn(item) for item in items]\n\n"
        "def go(items):\n"
        "    return run_pooled(items, lambda item: item + 1)\n"
    )
    findings = check_source(source, "resilience/poolmod.py")
    assert [f.rule for f in findings] == ["RPR004"]


def test_project_rules_silent_without_project_analysis():
    path = FIXTURES / "sim" / "bad_transitive_memopurity.py"
    findings = check_source(
        path.read_text(), package_relpath(path), project=False
    )
    assert findings == []
