"""Fixture-driven tests for the five built-in lint rules.

Each rule has a ``bad_*`` fixture that must produce the expected
findings and a ``good_*`` fixture that must be completely clean (across
*all* rules -- a good fixture tripping an unrelated rule is a bug in
either the fixture or the rule).
"""

from pathlib import Path

import pytest

from repro.lint import check_source, package_relpath

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


def _lint_fixture(relative):
    path = FIXTURES / relative
    return check_source(path.read_text(), package_relpath(path))


GOOD_FIXTURES = [
    "sim/good_determinism.py",
    "core/good_units.py",
    "core/good_envread.py",
    "resilience/good_forksafety.py",
    "sim/good_memopurity.py",
    "experiments/good_artifactwrite.py",
    "resilience/good_journal_locking.py",
    "sim/good_transitive_memopurity.py",
    "resilience/good_transitive_forksafety.py",
]

BAD_FIXTURES = {
    "sim/bad_determinism.py": ("RPR001", 8),
    "core/bad_units.py": ("RPR002", 4),
    "core/bad_envread.py": ("RPR003", 4),
    "resilience/bad_forksafety.py": ("RPR004", 5),
    "sim/bad_memopurity.py": ("RPR005", 4),
    "experiments/bad_artifactwrite.py": ("RPR006", 2),
    "resilience/bad_journal_locking.py": ("RPR007", 1),
    "sim/bad_transitive_memopurity.py": ("RPR008", 2),
    "resilience/bad_transitive_forksafety.py": ("RPR009", 3),
}


@pytest.mark.parametrize("relative", GOOD_FIXTURES)
def test_good_fixture_is_clean_across_all_rules(relative):
    assert _lint_fixture(relative) == []


@pytest.mark.parametrize("relative,expected", BAD_FIXTURES.items())
def test_bad_fixture_fires_its_rule(relative, expected):
    rule_id, count = expected
    findings = _lint_fixture(relative)
    assert [item.rule for item in findings] == [rule_id] * count


def test_bad_fixtures_annotate_every_flagged_line():
    """Each ``# RPR00x`` annotation in a bad fixture marks a real finding."""
    for relative, (rule_id, _) in BAD_FIXTURES.items():
        path = FIXTURES / relative
        flagged = {item.line for item in _lint_fixture(relative)}
        annotated = {
            i
            for i, line in enumerate(path.read_text().split("\n"), start=1)
            if f"# {rule_id}" in line
        }
        assert annotated <= flagged, f"{relative}: stale annotations"


# -- targeted in-memory cases ------------------------------------------------


def test_determinism_scope_excludes_experiments():
    source = "import time\n\ndef f():\n    return time.time()\n"
    assert check_source(source, "experiments/cli.py") == []
    assert [f.rule for f in check_source(source, "sim/x.py")] == ["RPR001"]


def test_determinism_message_names_the_call():
    source = "import time\n\ndef f():\n    return time.perf_counter()\n"
    (finding,) = check_source(source, "cache/x.py")
    assert "time.perf_counter" in finding.message


def test_units_product_is_a_conversion_not_a_violation():
    source = "def f(cycles, cycle_ns, base_ns):\n    return base_ns + cycles * cycle_ns\n"
    assert check_source(source, "sim/x.py") == []


def test_units_seconds_flavours_are_one_unit():
    source = "def f(deadline_s, grace_seconds):\n    return deadline_s + grace_seconds\n"
    assert check_source(source, "core/x.py") == []


def test_units_propagates_through_additive_subtrees():
    source = "def f(a_ns, b_ns, c_cycles):\n    return (a_ns + b_ns) + c_cycles\n"
    (finding,) = check_source(source, "core/x.py")
    assert finding.rule == "RPR002"
    assert "(ns)" in finding.message and "(cycles)" in finding.message


def test_envreads_sees_through_module_constants():
    source = (
        "import os\n"
        "KNOB = 'REPRO_HIDDEN'\n"
        "def f():\n"
        "    return os.getenv(KNOB)\n"
    )
    (finding,) = check_source(source, "core/x.py")
    assert finding.rule == "RPR003"
    assert "REPRO_HIDDEN" in finding.message


def test_envreads_registered_variable_is_clean():
    source = (
        "from repro.core import envcfg\n"
        "def f():\n"
        "    return envcfg.get('REPRO_SWEEP_WORKERS')\n"
    )
    assert check_source(source, "core/x.py") == []


def test_envreads_fires_when_registration_is_deleted(monkeypatch):
    """The acceptance criterion: de-registering a live variable makes
    every surviving ``envcfg.get`` use site a lint failure."""
    from repro.core import envcfg

    source = (
        "from repro.core import envcfg\n"
        "def f():\n"
        "    return envcfg.get('REPRO_SWEEP_WORKERS')\n"
    )
    assert check_source(source, "core/x.py") == []
    pruned = frozenset(
        name for name in envcfg.registered_names() if name != "REPRO_SWEEP_WORKERS"
    )
    monkeypatch.setattr(envcfg, "registered_names", lambda: pruned)
    (finding,) = check_source(source, "core/x.py")
    assert finding.rule == "RPR003"
    assert "no registration" in finding.message


def test_envreads_ignores_envcfg_module_itself():
    source = "import os\n\ndef f():\n    return os.getenv('REPRO_X')\n"
    assert check_source(source, "core/envcfg.py") == []


def test_forksafety_ignores_unknown_entry_points():
    source = "def f(apply, work):\n    return apply(lambda c: c, work)\n"
    assert check_source(source, "core/x.py") == []


def test_memopurity_strict_module_checks_every_function():
    source = "import os\n\ndef helper():\n    return os.getenv('HOME')\n"
    (finding,) = check_source(source, "sim/memo.py")
    assert finding.rule == "RPR005"
    assert check_source(source, "sim/other.py") == []
